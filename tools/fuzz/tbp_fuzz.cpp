// tbp-fuzz — seeded random-workload fuzzing with differential verification.
//
//   tbp-fuzz run     [--seeds N] [--base-seed S] [--jobs N] [--sms S]
//                    [--err-bound PCT] [--parallel-jobs N] [--no-parallel]
//                    [--no-faults] [--no-shrink] [--out DIR] [--json PATH]
//       Runs a campaign of N seeds (default 25) derived from the base seed:
//       each seed is expanded into a random multi-launch workload, checked
//       against the differential oracles (trace validity, TBPoint-vs-full
//       accuracy with error attribution, profiler-vs-simulator instruction
//       counts, serial-vs-parallel byte identity, fault quarantine) and, on
//       failure, minimized.  Each failing seed's shrunk spec is written to
//       <out>/repro-<seed16hex>.json as a sealed tbp-fuzz-repro-v1 file.
//       Exit 0 when every seed passes, 1 on any violation, 2 on usage error.
//   tbp-fuzz replay  <repro.json|seed> [--sms S] [--err-bound PCT] ...
//       Re-checks one reproducer file (or one literal seed, 0x-prefixed or
//       decimal) and prints the violations.  Exit codes as above.
//   tbp-fuzz corpus  <seeds.txt> [--sms S] [--err-bound PCT] ...
//       Replays every seed listed in a corpus file (one seed per line,
//       0x-prefixed or decimal, '#' comments) — the pinned regression
//       corpus tests/fuzz/corpus/pinned_seeds.txt runs under ctest.
//
// Everything is deterministic: the same flags produce the same verdicts,
// the same reproducer bytes and the same --json output for every --jobs
// value (the campaign writes per-seed indexed slots; each seed's oracle
// work fixes its own internal jobs values independently of --jobs).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/campaign.hpp"
#include "fuzz/spec_io.hpp"
#include "harness/cli.hpp"
#include "sim/config.hpp"
#include "support/parallel.hpp"

namespace {

using namespace tbp;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: tbp-fuzz <run|replay|corpus> [args...]\n"
               "(see the header of tools/fuzz/tbp_fuzz.cpp)\n");
  std::exit(2);
}

[[noreturn]] void bad_flag_value(const std::string& name, const Status& status) {
  std::fprintf(stderr, "tbp-fuzz: invalid value for %s: %s\n", name.c_str(),
               status.message().c_str());
  std::exit(2);
}

std::uint32_t flag_u32(int argc, char** argv, const std::string& name,
                       std::uint32_t fb) {
  const std::string v = harness::flag_value(argc, argv, name, "");
  if (v.empty()) return fb;
  const Result<std::uint32_t> parsed = harness::parse_u32(v);
  if (!parsed.has_value()) bad_flag_value(name, parsed.status());
  return *parsed;
}

std::uint64_t flag_u64(int argc, char** argv, const std::string& name,
                       std::uint64_t fb, int base = 10) {
  const std::string v = harness::flag_value(argc, argv, name, "");
  if (v.empty()) return fb;
  const Result<std::uint64_t> parsed = harness::parse_u64(v, base);
  if (!parsed.has_value()) bad_flag_value(name, parsed.status());
  return *parsed;
}

double flag_double(int argc, char** argv, const std::string& name, double fb) {
  const std::string v = harness::flag_value(argc, argv, name, "");
  if (v.empty()) return fb;
  const Result<double> parsed = harness::parse_double(v);
  if (!parsed.has_value()) bad_flag_value(name, parsed.status());
  return *parsed;
}

/// Flags shared by all three subcommands.
struct FuzzFlags {
  sim::GpuConfig config;
  fuzz::CampaignOptions options;
  std::string out_dir = ".";
  std::string json_path;
};

FuzzFlags parse_flags(int argc, char** argv) {
  FuzzFlags flags;
  // A small configuration keeps each seed's two full simulations cheap;
  // determinism and accuracy contracts are SM-count independent.
  flags.config = sim::scaled_config(48, flag_u32(argc, argv, "--sms", 4));
  flags.options.n_seeds = flag_u64(argc, argv, "--seeds", 25);
  flags.options.base_seed =
      flag_u64(argc, argv, "--base-seed", 0x7b90147, /*base=*/0);
  flags.options.jobs =
      flag_u64(argc, argv, "--jobs", par::default_jobs());
  if (flags.options.jobs == 0) flags.options.jobs = 1;
  flags.options.bounds.max_tbpoint_err_pct =
      flag_double(argc, argv, "--err-bound",
                  flags.options.bounds.max_tbpoint_err_pct);
  flags.options.bounds.parallel_jobs =
      flag_u64(argc, argv, "--parallel-jobs", 4);
  if (harness::has_flag(argc, argv, "--no-parallel")) {
    flags.options.bounds.run_parallel = false;
  }
  if (harness::has_flag(argc, argv, "--no-faults")) {
    flags.options.bounds.run_faults = false;
  }
  if (harness::has_flag(argc, argv, "--no-shrink")) {
    flags.options.shrink_failures = false;
  }
  flags.out_dir = harness::flag_value(argc, argv, "--out", ".");
  flags.json_path = harness::flag_value(argc, argv, "--json", "");
  return flags;
}

void print_outcome(const fuzz::SeedOutcome& outcome) {
  if (outcome.ok) {
    std::printf("seed %016llx: ok (tbpoint err %.2f%%)\n",
                static_cast<unsigned long long>(outcome.seed),
                outcome.tbpoint_err_pct);
    return;
  }
  std::printf("seed %016llx: FAIL [%s]%s\n",
              static_cast<unsigned long long>(outcome.seed),
              outcome.violation_tag.c_str(),
              outcome.shrunk ? " (minimized)" : "");
  for (const fuzz::OracleViolation& v : outcome.violations) {
    std::printf("  %s: %s\n", fuzz::oracle_stage_name(v.stage),
                v.detail.c_str());
  }
}

/// Writes the failing outcome's reproducer file; returns its path.
std::string write_reproducer(const fuzz::SeedOutcome& outcome,
                             const std::string& out_dir) {
  const std::string path =
      out_dir + "/repro-" + fuzz::seed_workload_name(outcome.seed).substr(5) +
      ".json";
  const Status written = fuzz::save_reproducer(
      outcome.repro_spec, outcome.seed, outcome.violation_tag, path);
  if (!written.ok()) {
    std::fprintf(stderr, "tbp-fuzz: cannot write %s: %s\n", path.c_str(),
                 written.to_string().c_str());
  }
  return path;
}

int report_and_exit_code(const FuzzFlags& flags,
                         const fuzz::CampaignResult& result) {
  for (const fuzz::SeedOutcome& outcome : result.outcomes) {
    print_outcome(outcome);
    if (!outcome.ok) {
      const std::string path = write_reproducer(outcome, flags.out_dir);
      std::printf("  reproducer: %s\n", path.c_str());
    }
  }
  if (!flags.json_path.empty()) {
    const obs::JsonValue body =
        fuzz::campaign_to_value(flags.options, result);
    const Status written = obs::write_json_file(
        obs::seal_json("tbp-fuzz-campaign-v1", body), flags.json_path);
    if (!written.ok()) {
      std::fprintf(stderr, "tbp-fuzz: cannot write %s: %s\n",
                   flags.json_path.c_str(), written.to_string().c_str());
      return 1;
    }
  }
  const std::size_t failures = result.n_failures();
  std::printf("%zu/%zu seeds ok\n", result.outcomes.size() - failures,
              result.outcomes.size());
  return failures == 0 ? 0 : 1;
}

int cmd_run(int argc, char** argv) {
  const FuzzFlags flags = parse_flags(argc, argv);
  const fuzz::CampaignResult result =
      fuzz::run_campaign(flags.config, flags.options);
  return report_and_exit_code(flags, result);
}

/// Replays one literal seed through the campaign's per-seed path.
fuzz::SeedOutcome replay_seed(std::uint64_t seed, const FuzzFlags& flags) {
  return fuzz::check_seed(seed, flags.config, flags.options);
}

int cmd_replay(int argc, char** argv) {
  if (argc < 3) usage();
  const std::string target = argv[2];
  const FuzzFlags flags = parse_flags(argc, argv);

  // A bare seed replays through the generator; a file replays its pinned
  // spec (which survives generator evolution).
  const Result<std::uint64_t> as_seed = harness::parse_u64(target, /*base=*/0);
  fuzz::CampaignResult result;
  if (as_seed.has_value()) {
    result.outcomes.push_back(replay_seed(*as_seed, flags));
  } else {
    const Result<fuzz::Reproducer> repro = fuzz::load_reproducer(target);
    if (!repro.has_value()) {
      std::fprintf(stderr, "tbp-fuzz: cannot load %s: %s\n", target.c_str(),
                   repro.status().to_string().c_str());
      return 2;
    }
    fuzz::SeedOutcome outcome;
    outcome.seed = repro->seed;
    const fuzz::OracleReport report = fuzz::check_workload(
        repro->spec, flags.config, flags.options.bounds);
    outcome.tbpoint_err_pct = report.row.tbpoint.err_pct;
    if (!report.ok()) {
      outcome.ok = false;
      outcome.violation_tag = report.violation_tag();
      outcome.violations = report.violations;
      outcome.repro_spec = repro->spec;
    }
    result.outcomes.push_back(std::move(outcome));
  }
  return report_and_exit_code(flags, result);
}

int cmd_corpus(int argc, char** argv) {
  if (argc < 3) usage();
  const FuzzFlags flags = parse_flags(argc, argv);

  std::ifstream in(argv[2]);
  if (!in) {
    std::fprintf(stderr, "tbp-fuzz: cannot open corpus file %s\n", argv[2]);
    return 2;
  }
  std::vector<std::uint64_t> seeds;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    const std::size_t end = line.find_last_not_of(" \t\r");
    const Result<std::uint64_t> seed =
        harness::parse_u64(line.substr(start, end - start + 1), /*base=*/0);
    if (!seed.has_value()) {
      std::fprintf(stderr, "tbp-fuzz: bad corpus line '%s': %s\n",
                   line.c_str(), seed.status().message().c_str());
      return 2;
    }
    seeds.push_back(*seed);
  }

  fuzz::CampaignResult result;
  result.outcomes.resize(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    result.outcomes[i] = replay_seed(seeds[i], flags);
  }
  return report_and_exit_code(flags, result);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  if (command == "run") return cmd_run(argc, argv);
  if (command == "replay") return cmd_replay(argc, argv);
  if (command == "corpus") return cmd_corpus(argc, argv);
  usage();
}
