file(REMOVE_RECURSE
  "CMakeFiles/custom_kernel.dir/custom_kernel.cpp.o"
  "CMakeFiles/custom_kernel.dir/custom_kernel.cpp.o.d"
  "custom_kernel"
  "custom_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
