# Empty dependencies file for sampling_deep_dive.
# This may be replaced when dependencies are built.
