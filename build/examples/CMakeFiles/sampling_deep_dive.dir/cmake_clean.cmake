file(REMOVE_RECURSE
  "CMakeFiles/sampling_deep_dive.dir/sampling_deep_dive.cpp.o"
  "CMakeFiles/sampling_deep_dive.dir/sampling_deep_dive.cpp.o.d"
  "sampling_deep_dive"
  "sampling_deep_dive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_deep_dive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
