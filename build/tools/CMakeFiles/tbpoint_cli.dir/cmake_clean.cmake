file(REMOVE_RECURSE
  "CMakeFiles/tbpoint_cli.dir/tbpoint_cli.cpp.o"
  "CMakeFiles/tbpoint_cli.dir/tbpoint_cli.cpp.o.d"
  "tbpoint_cli"
  "tbpoint_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbpoint_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
