# Empty compiler generated dependencies file for tbpoint_cli.
# This may be replaced when dependencies are built.
