# Empty compiler generated dependencies file for systematic_sampling_test.
# This may be replaced when dependencies are built.
