file(REMOVE_RECURSE
  "CMakeFiles/systematic_sampling_test.dir/baselines/systematic_sampling_test.cpp.o"
  "CMakeFiles/systematic_sampling_test.dir/baselines/systematic_sampling_test.cpp.o.d"
  "systematic_sampling_test"
  "systematic_sampling_test.pdb"
  "systematic_sampling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/systematic_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
