file(REMOVE_RECURSE
  "CMakeFiles/feature_test.dir/cluster/feature_test.cpp.o"
  "CMakeFiles/feature_test.dir/cluster/feature_test.cpp.o.d"
  "feature_test"
  "feature_test.pdb"
  "feature_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
