# Empty dependencies file for feature_test.
# This may be replaced when dependencies are built.
