# Empty compiler generated dependencies file for memory_system_test.
# This may be replaced when dependencies are built.
