# Empty compiler generated dependencies file for sm_behavior_test.
# This may be replaced when dependencies are built.
