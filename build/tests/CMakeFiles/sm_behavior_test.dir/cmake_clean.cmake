file(REMOVE_RECURSE
  "CMakeFiles/sm_behavior_test.dir/sim/sm_behavior_test.cpp.o"
  "CMakeFiles/sm_behavior_test.dir/sim/sm_behavior_test.cpp.o.d"
  "sm_behavior_test"
  "sm_behavior_test.pdb"
  "sm_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
