file(REMOVE_RECURSE
  "CMakeFiles/constant_latency_test.dir/markov/constant_latency_test.cpp.o"
  "CMakeFiles/constant_latency_test.dir/markov/constant_latency_test.cpp.o.d"
  "constant_latency_test"
  "constant_latency_test.pdb"
  "constant_latency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constant_latency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
