# Empty compiler generated dependencies file for constant_latency_test.
# This may be replaced when dependencies are built.
