# Empty dependencies file for monte_carlo_test.
# This may be replaced when dependencies are built.
