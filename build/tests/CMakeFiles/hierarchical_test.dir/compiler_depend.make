# Empty compiler generated dependencies file for hierarchical_test.
# This may be replaced when dependencies are built.
