file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_test.dir/cluster/hierarchical_test.cpp.o"
  "CMakeFiles/hierarchical_test.dir/cluster/hierarchical_test.cpp.o.d"
  "hierarchical_test"
  "hierarchical_test.pdb"
  "hierarchical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
