file(REMOVE_RECURSE
  "CMakeFiles/reconstruction_test.dir/core/reconstruction_test.cpp.o"
  "CMakeFiles/reconstruction_test.dir/core/reconstruction_test.cpp.o.d"
  "reconstruction_test"
  "reconstruction_test.pdb"
  "reconstruction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconstruction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
