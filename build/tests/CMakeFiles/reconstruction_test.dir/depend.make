# Empty dependencies file for reconstruction_test.
# This may be replaced when dependencies are built.
