# Empty dependencies file for region_io_test.
# This may be replaced when dependencies are built.
