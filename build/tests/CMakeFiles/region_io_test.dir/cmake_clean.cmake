file(REMOVE_RECURSE
  "CMakeFiles/region_io_test.dir/core/region_io_test.cpp.o"
  "CMakeFiles/region_io_test.dir/core/region_io_test.cpp.o.d"
  "region_io_test"
  "region_io_test.pdb"
  "region_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
