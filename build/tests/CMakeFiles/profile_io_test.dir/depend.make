# Empty dependencies file for profile_io_test.
# This may be replaced when dependencies are built.
