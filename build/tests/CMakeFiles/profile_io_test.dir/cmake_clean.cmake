file(REMOVE_RECURSE
  "CMakeFiles/profile_io_test.dir/profile/profile_io_test.cpp.o"
  "CMakeFiles/profile_io_test.dir/profile/profile_io_test.cpp.o.d"
  "profile_io_test"
  "profile_io_test.pdb"
  "profile_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
