file(REMOVE_RECURSE
  "CMakeFiles/region_sampler_test.dir/core/region_sampler_test.cpp.o"
  "CMakeFiles/region_sampler_test.dir/core/region_sampler_test.cpp.o.d"
  "region_sampler_test"
  "region_sampler_test.pdb"
  "region_sampler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
