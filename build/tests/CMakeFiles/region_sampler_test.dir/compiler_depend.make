# Empty compiler generated dependencies file for region_sampler_test.
# This may be replaced when dependencies are built.
