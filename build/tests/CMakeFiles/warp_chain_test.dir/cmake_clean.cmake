file(REMOVE_RECURSE
  "CMakeFiles/warp_chain_test.dir/markov/warp_chain_test.cpp.o"
  "CMakeFiles/warp_chain_test.dir/markov/warp_chain_test.cpp.o.d"
  "warp_chain_test"
  "warp_chain_test.pdb"
  "warp_chain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warp_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
