# Empty compiler generated dependencies file for warp_chain_test.
# This may be replaced when dependencies are built.
