file(REMOVE_RECURSE
  "CMakeFiles/occupancy_test.dir/trace/occupancy_test.cpp.o"
  "CMakeFiles/occupancy_test.dir/trace/occupancy_test.cpp.o.d"
  "occupancy_test"
  "occupancy_test.pdb"
  "occupancy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occupancy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
