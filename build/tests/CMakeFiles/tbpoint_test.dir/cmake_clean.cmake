file(REMOVE_RECURSE
  "CMakeFiles/tbpoint_test.dir/core/tbpoint_test.cpp.o"
  "CMakeFiles/tbpoint_test.dir/core/tbpoint_test.cpp.o.d"
  "tbpoint_test"
  "tbpoint_test.pdb"
  "tbpoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
