# Empty dependencies file for tbpoint_test.
# This may be replaced when dependencies are built.
