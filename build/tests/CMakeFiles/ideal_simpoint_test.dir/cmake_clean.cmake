file(REMOVE_RECURSE
  "CMakeFiles/ideal_simpoint_test.dir/baselines/ideal_simpoint_test.cpp.o"
  "CMakeFiles/ideal_simpoint_test.dir/baselines/ideal_simpoint_test.cpp.o.d"
  "ideal_simpoint_test"
  "ideal_simpoint_test.pdb"
  "ideal_simpoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ideal_simpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
