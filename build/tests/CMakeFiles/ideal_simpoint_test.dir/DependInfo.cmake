
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/ideal_simpoint_test.cpp" "tests/CMakeFiles/ideal_simpoint_test.dir/baselines/ideal_simpoint_test.cpp.o" "gcc" "tests/CMakeFiles/ideal_simpoint_test.dir/baselines/ideal_simpoint_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/tbp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tbp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/tbp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tbp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/tbp_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/analytical/CMakeFiles/tbp_analytical.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tbp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/tbp_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tbp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/tbp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tbp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
