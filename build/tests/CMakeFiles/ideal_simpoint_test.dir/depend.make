# Empty dependencies file for ideal_simpoint_test.
# This may be replaced when dependencies are built.
