file(REMOVE_RECURSE
  "CMakeFiles/region_test.dir/core/region_test.cpp.o"
  "CMakeFiles/region_test.dir/core/region_test.cpp.o.d"
  "region_test"
  "region_test.pdb"
  "region_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
