# Empty dependencies file for gpu_invariants_test.
# This may be replaced when dependencies are built.
