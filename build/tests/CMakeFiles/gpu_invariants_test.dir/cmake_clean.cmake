file(REMOVE_RECURSE
  "CMakeFiles/gpu_invariants_test.dir/sim/gpu_invariants_test.cpp.o"
  "CMakeFiles/gpu_invariants_test.dir/sim/gpu_invariants_test.cpp.o.d"
  "gpu_invariants_test"
  "gpu_invariants_test.pdb"
  "gpu_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
