# Empty dependencies file for random_sampling_test.
# This may be replaced when dependencies are built.
