file(REMOVE_RECURSE
  "CMakeFiles/random_sampling_test.dir/baselines/random_sampling_test.cpp.o"
  "CMakeFiles/random_sampling_test.dir/baselines/random_sampling_test.cpp.o.d"
  "random_sampling_test"
  "random_sampling_test.pdb"
  "random_sampling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
