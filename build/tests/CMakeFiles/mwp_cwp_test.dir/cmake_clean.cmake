file(REMOVE_RECURSE
  "CMakeFiles/mwp_cwp_test.dir/analytical/mwp_cwp_test.cpp.o"
  "CMakeFiles/mwp_cwp_test.dir/analytical/mwp_cwp_test.cpp.o.d"
  "mwp_cwp_test"
  "mwp_cwp_test.pdb"
  "mwp_cwp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwp_cwp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
