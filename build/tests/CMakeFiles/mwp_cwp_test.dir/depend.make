# Empty dependencies file for mwp_cwp_test.
# This may be replaced when dependencies are built.
