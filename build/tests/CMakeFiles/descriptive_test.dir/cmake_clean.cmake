file(REMOVE_RECURSE
  "CMakeFiles/descriptive_test.dir/stats/descriptive_test.cpp.o"
  "CMakeFiles/descriptive_test.dir/stats/descriptive_test.cpp.o.d"
  "descriptive_test"
  "descriptive_test.pdb"
  "descriptive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/descriptive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
