# Empty dependencies file for descriptive_test.
# This may be replaced when dependencies are built.
