file(REMOVE_RECURSE
  "CMakeFiles/dram_test.dir/sim/dram_test.cpp.o"
  "CMakeFiles/dram_test.dir/sim/dram_test.cpp.o.d"
  "dram_test"
  "dram_test.pdb"
  "dram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
