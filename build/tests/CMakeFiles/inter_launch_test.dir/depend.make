# Empty dependencies file for inter_launch_test.
# This may be replaced when dependencies are built.
