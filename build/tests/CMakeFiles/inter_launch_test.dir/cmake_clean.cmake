file(REMOVE_RECURSE
  "CMakeFiles/inter_launch_test.dir/core/inter_launch_test.cpp.o"
  "CMakeFiles/inter_launch_test.dir/core/inter_launch_test.cpp.o.d"
  "inter_launch_test"
  "inter_launch_test.pdb"
  "inter_launch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inter_launch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
