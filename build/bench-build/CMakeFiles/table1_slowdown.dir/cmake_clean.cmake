file(REMOVE_RECURSE
  "../bench/table1_slowdown"
  "../bench/table1_slowdown.pdb"
  "CMakeFiles/table1_slowdown.dir/table1_slowdown.cpp.o"
  "CMakeFiles/table1_slowdown.dir/table1_slowdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
