# Empty dependencies file for table1_slowdown.
# This may be replaced when dependencies are built.
