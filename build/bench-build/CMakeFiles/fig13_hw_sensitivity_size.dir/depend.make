# Empty dependencies file for fig13_hw_sensitivity_size.
# This may be replaced when dependencies are built.
