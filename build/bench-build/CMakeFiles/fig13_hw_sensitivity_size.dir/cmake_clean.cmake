file(REMOVE_RECURSE
  "../bench/fig13_hw_sensitivity_size"
  "../bench/fig13_hw_sensitivity_size.pdb"
  "CMakeFiles/fig13_hw_sensitivity_size.dir/fig13_hw_sensitivity_size.cpp.o"
  "CMakeFiles/fig13_hw_sensitivity_size.dir/fig13_hw_sensitivity_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_hw_sensitivity_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
