file(REMOVE_RECURSE
  "../bench/micro_sim"
  "../bench/micro_sim.pdb"
  "CMakeFiles/micro_sim.dir/micro_sim.cpp.o"
  "CMakeFiles/micro_sim.dir/micro_sim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
