file(REMOVE_RECURSE
  "../bench/ablation_thresholds"
  "../bench/ablation_thresholds.pdb"
  "CMakeFiles/ablation_thresholds.dir/ablation_thresholds.cpp.o"
  "CMakeFiles/ablation_thresholds.dir/ablation_thresholds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
