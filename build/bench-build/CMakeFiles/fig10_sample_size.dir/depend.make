# Empty dependencies file for fig10_sample_size.
# This may be replaced when dependencies are built.
