file(REMOVE_RECURSE
  "../bench/fig10_sample_size"
  "../bench/fig10_sample_size.pdb"
  "CMakeFiles/fig10_sample_size.dir/fig10_sample_size.cpp.o"
  "CMakeFiles/fig10_sample_size.dir/fig10_sample_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sample_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
