# Empty compiler generated dependencies file for related_analytical.
# This may be replaced when dependencies are built.
