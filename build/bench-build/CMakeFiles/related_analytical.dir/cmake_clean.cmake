file(REMOVE_RECURSE
  "../bench/related_analytical"
  "../bench/related_analytical.pdb"
  "CMakeFiles/related_analytical.dir/related_analytical.cpp.o"
  "CMakeFiles/related_analytical.dir/related_analytical.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_analytical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
