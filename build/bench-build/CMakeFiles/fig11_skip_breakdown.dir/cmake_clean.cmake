file(REMOVE_RECURSE
  "../bench/fig11_skip_breakdown"
  "../bench/fig11_skip_breakdown.pdb"
  "CMakeFiles/fig11_skip_breakdown.dir/fig11_skip_breakdown.cpp.o"
  "CMakeFiles/fig11_skip_breakdown.dir/fig11_skip_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_skip_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
