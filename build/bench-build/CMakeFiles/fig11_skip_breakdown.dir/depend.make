# Empty dependencies file for fig11_skip_breakdown.
# This may be replaced when dependencies are built.
