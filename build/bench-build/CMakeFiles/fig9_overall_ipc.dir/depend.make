# Empty dependencies file for fig9_overall_ipc.
# This may be replaced when dependencies are built.
