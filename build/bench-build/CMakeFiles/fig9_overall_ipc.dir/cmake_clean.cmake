file(REMOVE_RECURSE
  "../bench/fig9_overall_ipc"
  "../bench/fig9_overall_ipc.pdb"
  "CMakeFiles/fig9_overall_ipc.dir/fig9_overall_ipc.cpp.o"
  "CMakeFiles/fig9_overall_ipc.dir/fig9_overall_ipc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_overall_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
