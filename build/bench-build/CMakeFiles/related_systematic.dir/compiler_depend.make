# Empty compiler generated dependencies file for related_systematic.
# This may be replaced when dependencies are built.
