file(REMOVE_RECURSE
  "../bench/related_systematic"
  "../bench/related_systematic.pdb"
  "CMakeFiles/related_systematic.dir/related_systematic.cpp.o"
  "CMakeFiles/related_systematic.dir/related_systematic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_systematic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
