file(REMOVE_RECURSE
  "../bench/micro_cluster"
  "../bench/micro_cluster.pdb"
  "CMakeFiles/micro_cluster.dir/micro_cluster.cpp.o"
  "CMakeFiles/micro_cluster.dir/micro_cluster.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
