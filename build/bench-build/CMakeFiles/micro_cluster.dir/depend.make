# Empty dependencies file for micro_cluster.
# This may be replaced when dependencies are built.
