file(REMOVE_RECURSE
  "../bench/fig8_kernel_types"
  "../bench/fig8_kernel_types.pdb"
  "CMakeFiles/fig8_kernel_types.dir/fig8_kernel_types.cpp.o"
  "CMakeFiles/fig8_kernel_types.dir/fig8_kernel_types.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_kernel_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
