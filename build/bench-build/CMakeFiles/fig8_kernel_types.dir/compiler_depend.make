# Empty compiler generated dependencies file for fig8_kernel_types.
# This may be replaced when dependencies are built.
