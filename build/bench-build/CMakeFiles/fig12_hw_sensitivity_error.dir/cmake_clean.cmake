file(REMOVE_RECURSE
  "../bench/fig12_hw_sensitivity_error"
  "../bench/fig12_hw_sensitivity_error.pdb"
  "CMakeFiles/fig12_hw_sensitivity_error.dir/fig12_hw_sensitivity_error.cpp.o"
  "CMakeFiles/fig12_hw_sensitivity_error.dir/fig12_hw_sensitivity_error.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_hw_sensitivity_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
