# Empty dependencies file for fig12_hw_sensitivity_error.
# This may be replaced when dependencies are built.
