file(REMOVE_RECURSE
  "../bench/table6_benchmarks"
  "../bench/table6_benchmarks.pdb"
  "CMakeFiles/table6_benchmarks.dir/table6_benchmarks.cpp.o"
  "CMakeFiles/table6_benchmarks.dir/table6_benchmarks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
