# Empty dependencies file for table6_benchmarks.
# This may be replaced when dependencies are built.
