# Empty compiler generated dependencies file for fig5_ipc_variation.
# This may be replaced when dependencies are built.
