file(REMOVE_RECURSE
  "../bench/fig5_ipc_variation"
  "../bench/fig5_ipc_variation.pdb"
  "CMakeFiles/fig5_ipc_variation.dir/fig5_ipc_variation.cpp.o"
  "CMakeFiles/fig5_ipc_variation.dir/fig5_ipc_variation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ipc_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
