
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/tbp_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/tbp_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/config.cpp" "src/sim/CMakeFiles/tbp_sim.dir/config.cpp.o" "gcc" "src/sim/CMakeFiles/tbp_sim.dir/config.cpp.o.d"
  "/root/repo/src/sim/dram.cpp" "src/sim/CMakeFiles/tbp_sim.dir/dram.cpp.o" "gcc" "src/sim/CMakeFiles/tbp_sim.dir/dram.cpp.o.d"
  "/root/repo/src/sim/gpu.cpp" "src/sim/CMakeFiles/tbp_sim.dir/gpu.cpp.o" "gcc" "src/sim/CMakeFiles/tbp_sim.dir/gpu.cpp.o.d"
  "/root/repo/src/sim/memory_system.cpp" "src/sim/CMakeFiles/tbp_sim.dir/memory_system.cpp.o" "gcc" "src/sim/CMakeFiles/tbp_sim.dir/memory_system.cpp.o.d"
  "/root/repo/src/sim/sm.cpp" "src/sim/CMakeFiles/tbp_sim.dir/sm.cpp.o" "gcc" "src/sim/CMakeFiles/tbp_sim.dir/sm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/tbp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tbp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
