file(REMOVE_RECURSE
  "libtbp_sim.a"
)
