# Empty compiler generated dependencies file for tbp_sim.
# This may be replaced when dependencies are built.
