file(REMOVE_RECURSE
  "CMakeFiles/tbp_sim.dir/cache.cpp.o"
  "CMakeFiles/tbp_sim.dir/cache.cpp.o.d"
  "CMakeFiles/tbp_sim.dir/config.cpp.o"
  "CMakeFiles/tbp_sim.dir/config.cpp.o.d"
  "CMakeFiles/tbp_sim.dir/dram.cpp.o"
  "CMakeFiles/tbp_sim.dir/dram.cpp.o.d"
  "CMakeFiles/tbp_sim.dir/gpu.cpp.o"
  "CMakeFiles/tbp_sim.dir/gpu.cpp.o.d"
  "CMakeFiles/tbp_sim.dir/memory_system.cpp.o"
  "CMakeFiles/tbp_sim.dir/memory_system.cpp.o.d"
  "CMakeFiles/tbp_sim.dir/sm.cpp.o"
  "CMakeFiles/tbp_sim.dir/sm.cpp.o.d"
  "libtbp_sim.a"
  "libtbp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
