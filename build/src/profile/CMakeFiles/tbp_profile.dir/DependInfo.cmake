
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/profile_io.cpp" "src/profile/CMakeFiles/tbp_profile.dir/profile_io.cpp.o" "gcc" "src/profile/CMakeFiles/tbp_profile.dir/profile_io.cpp.o.d"
  "/root/repo/src/profile/profiler.cpp" "src/profile/CMakeFiles/tbp_profile.dir/profiler.cpp.o" "gcc" "src/profile/CMakeFiles/tbp_profile.dir/profiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/tbp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tbp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
