# Empty compiler generated dependencies file for tbp_profile.
# This may be replaced when dependencies are built.
