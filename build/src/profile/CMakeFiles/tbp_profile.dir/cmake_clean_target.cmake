file(REMOVE_RECURSE
  "libtbp_profile.a"
)
