file(REMOVE_RECURSE
  "CMakeFiles/tbp_profile.dir/profile_io.cpp.o"
  "CMakeFiles/tbp_profile.dir/profile_io.cpp.o.d"
  "CMakeFiles/tbp_profile.dir/profiler.cpp.o"
  "CMakeFiles/tbp_profile.dir/profiler.cpp.o.d"
  "libtbp_profile.a"
  "libtbp_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbp_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
