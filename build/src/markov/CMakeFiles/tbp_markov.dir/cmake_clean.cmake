file(REMOVE_RECURSE
  "CMakeFiles/tbp_markov.dir/constant_latency.cpp.o"
  "CMakeFiles/tbp_markov.dir/constant_latency.cpp.o.d"
  "CMakeFiles/tbp_markov.dir/monte_carlo.cpp.o"
  "CMakeFiles/tbp_markov.dir/monte_carlo.cpp.o.d"
  "CMakeFiles/tbp_markov.dir/warp_chain.cpp.o"
  "CMakeFiles/tbp_markov.dir/warp_chain.cpp.o.d"
  "libtbp_markov.a"
  "libtbp_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbp_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
