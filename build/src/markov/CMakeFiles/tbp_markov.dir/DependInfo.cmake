
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/markov/constant_latency.cpp" "src/markov/CMakeFiles/tbp_markov.dir/constant_latency.cpp.o" "gcc" "src/markov/CMakeFiles/tbp_markov.dir/constant_latency.cpp.o.d"
  "/root/repo/src/markov/monte_carlo.cpp" "src/markov/CMakeFiles/tbp_markov.dir/monte_carlo.cpp.o" "gcc" "src/markov/CMakeFiles/tbp_markov.dir/monte_carlo.cpp.o.d"
  "/root/repo/src/markov/warp_chain.cpp" "src/markov/CMakeFiles/tbp_markov.dir/warp_chain.cpp.o" "gcc" "src/markov/CMakeFiles/tbp_markov.dir/warp_chain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/tbp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
