file(REMOVE_RECURSE
  "libtbp_markov.a"
)
