# Empty dependencies file for tbp_markov.
# This may be replaced when dependencies are built.
