file(REMOVE_RECURSE
  "CMakeFiles/tbp_stats.dir/descriptive.cpp.o"
  "CMakeFiles/tbp_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/tbp_stats.dir/error.cpp.o"
  "CMakeFiles/tbp_stats.dir/error.cpp.o.d"
  "CMakeFiles/tbp_stats.dir/matrix.cpp.o"
  "CMakeFiles/tbp_stats.dir/matrix.cpp.o.d"
  "CMakeFiles/tbp_stats.dir/rng.cpp.o"
  "CMakeFiles/tbp_stats.dir/rng.cpp.o.d"
  "libtbp_stats.a"
  "libtbp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
