file(REMOVE_RECURSE
  "libtbp_stats.a"
)
