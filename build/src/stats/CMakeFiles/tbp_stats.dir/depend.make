# Empty dependencies file for tbp_stats.
# This may be replaced when dependencies are built.
