file(REMOVE_RECURSE
  "CMakeFiles/tbp_trace.dir/generator.cpp.o"
  "CMakeFiles/tbp_trace.dir/generator.cpp.o.d"
  "CMakeFiles/tbp_trace.dir/kernel.cpp.o"
  "CMakeFiles/tbp_trace.dir/kernel.cpp.o.d"
  "CMakeFiles/tbp_trace.dir/occupancy.cpp.o"
  "CMakeFiles/tbp_trace.dir/occupancy.cpp.o.d"
  "CMakeFiles/tbp_trace.dir/validate.cpp.o"
  "CMakeFiles/tbp_trace.dir/validate.cpp.o.d"
  "libtbp_trace.a"
  "libtbp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
