
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/generator.cpp" "src/trace/CMakeFiles/tbp_trace.dir/generator.cpp.o" "gcc" "src/trace/CMakeFiles/tbp_trace.dir/generator.cpp.o.d"
  "/root/repo/src/trace/kernel.cpp" "src/trace/CMakeFiles/tbp_trace.dir/kernel.cpp.o" "gcc" "src/trace/CMakeFiles/tbp_trace.dir/kernel.cpp.o.d"
  "/root/repo/src/trace/occupancy.cpp" "src/trace/CMakeFiles/tbp_trace.dir/occupancy.cpp.o" "gcc" "src/trace/CMakeFiles/tbp_trace.dir/occupancy.cpp.o.d"
  "/root/repo/src/trace/validate.cpp" "src/trace/CMakeFiles/tbp_trace.dir/validate.cpp.o" "gcc" "src/trace/CMakeFiles/tbp_trace.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/tbp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
