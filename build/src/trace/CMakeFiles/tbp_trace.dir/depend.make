# Empty dependencies file for tbp_trace.
# This may be replaced when dependencies are built.
