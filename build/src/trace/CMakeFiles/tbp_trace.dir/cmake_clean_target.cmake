file(REMOVE_RECURSE
  "libtbp_trace.a"
)
