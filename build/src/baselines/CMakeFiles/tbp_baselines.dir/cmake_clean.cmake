file(REMOVE_RECURSE
  "CMakeFiles/tbp_baselines.dir/ideal_simpoint.cpp.o"
  "CMakeFiles/tbp_baselines.dir/ideal_simpoint.cpp.o.d"
  "CMakeFiles/tbp_baselines.dir/random_sampling.cpp.o"
  "CMakeFiles/tbp_baselines.dir/random_sampling.cpp.o.d"
  "CMakeFiles/tbp_baselines.dir/systematic_sampling.cpp.o"
  "CMakeFiles/tbp_baselines.dir/systematic_sampling.cpp.o.d"
  "libtbp_baselines.a"
  "libtbp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
