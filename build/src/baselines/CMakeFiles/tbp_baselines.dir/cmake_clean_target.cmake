file(REMOVE_RECURSE
  "libtbp_baselines.a"
)
