
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/ideal_simpoint.cpp" "src/baselines/CMakeFiles/tbp_baselines.dir/ideal_simpoint.cpp.o" "gcc" "src/baselines/CMakeFiles/tbp_baselines.dir/ideal_simpoint.cpp.o.d"
  "/root/repo/src/baselines/random_sampling.cpp" "src/baselines/CMakeFiles/tbp_baselines.dir/random_sampling.cpp.o" "gcc" "src/baselines/CMakeFiles/tbp_baselines.dir/random_sampling.cpp.o.d"
  "/root/repo/src/baselines/systematic_sampling.cpp" "src/baselines/CMakeFiles/tbp_baselines.dir/systematic_sampling.cpp.o" "gcc" "src/baselines/CMakeFiles/tbp_baselines.dir/systematic_sampling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tbp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/tbp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tbp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tbp_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
