# Empty compiler generated dependencies file for tbp_baselines.
# This may be replaced when dependencies are built.
