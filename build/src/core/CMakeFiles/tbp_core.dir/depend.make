# Empty dependencies file for tbp_core.
# This may be replaced when dependencies are built.
