file(REMOVE_RECURSE
  "libtbp_core.a"
)
