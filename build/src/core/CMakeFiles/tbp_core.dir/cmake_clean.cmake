file(REMOVE_RECURSE
  "CMakeFiles/tbp_core.dir/epoch.cpp.o"
  "CMakeFiles/tbp_core.dir/epoch.cpp.o.d"
  "CMakeFiles/tbp_core.dir/inter_launch.cpp.o"
  "CMakeFiles/tbp_core.dir/inter_launch.cpp.o.d"
  "CMakeFiles/tbp_core.dir/reconstruction.cpp.o"
  "CMakeFiles/tbp_core.dir/reconstruction.cpp.o.d"
  "CMakeFiles/tbp_core.dir/region.cpp.o"
  "CMakeFiles/tbp_core.dir/region.cpp.o.d"
  "CMakeFiles/tbp_core.dir/region_io.cpp.o"
  "CMakeFiles/tbp_core.dir/region_io.cpp.o.d"
  "CMakeFiles/tbp_core.dir/region_sampler.cpp.o"
  "CMakeFiles/tbp_core.dir/region_sampler.cpp.o.d"
  "CMakeFiles/tbp_core.dir/tbpoint.cpp.o"
  "CMakeFiles/tbp_core.dir/tbpoint.cpp.o.d"
  "libtbp_core.a"
  "libtbp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
