
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/epoch.cpp" "src/core/CMakeFiles/tbp_core.dir/epoch.cpp.o" "gcc" "src/core/CMakeFiles/tbp_core.dir/epoch.cpp.o.d"
  "/root/repo/src/core/inter_launch.cpp" "src/core/CMakeFiles/tbp_core.dir/inter_launch.cpp.o" "gcc" "src/core/CMakeFiles/tbp_core.dir/inter_launch.cpp.o.d"
  "/root/repo/src/core/reconstruction.cpp" "src/core/CMakeFiles/tbp_core.dir/reconstruction.cpp.o" "gcc" "src/core/CMakeFiles/tbp_core.dir/reconstruction.cpp.o.d"
  "/root/repo/src/core/region.cpp" "src/core/CMakeFiles/tbp_core.dir/region.cpp.o" "gcc" "src/core/CMakeFiles/tbp_core.dir/region.cpp.o.d"
  "/root/repo/src/core/region_io.cpp" "src/core/CMakeFiles/tbp_core.dir/region_io.cpp.o" "gcc" "src/core/CMakeFiles/tbp_core.dir/region_io.cpp.o.d"
  "/root/repo/src/core/region_sampler.cpp" "src/core/CMakeFiles/tbp_core.dir/region_sampler.cpp.o" "gcc" "src/core/CMakeFiles/tbp_core.dir/region_sampler.cpp.o.d"
  "/root/repo/src/core/tbpoint.cpp" "src/core/CMakeFiles/tbp_core.dir/tbpoint.cpp.o" "gcc" "src/core/CMakeFiles/tbp_core.dir/tbpoint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profile/CMakeFiles/tbp_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tbp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/tbp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tbp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tbp_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
