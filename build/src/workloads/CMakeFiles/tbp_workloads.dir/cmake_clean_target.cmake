file(REMOVE_RECURSE
  "libtbp_workloads.a"
)
