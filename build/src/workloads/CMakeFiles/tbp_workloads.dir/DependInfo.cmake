
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bfs.cpp" "src/workloads/CMakeFiles/tbp_workloads.dir/bfs.cpp.o" "gcc" "src/workloads/CMakeFiles/tbp_workloads.dir/bfs.cpp.o.d"
  "/root/repo/src/workloads/binomial.cpp" "src/workloads/CMakeFiles/tbp_workloads.dir/binomial.cpp.o" "gcc" "src/workloads/CMakeFiles/tbp_workloads.dir/binomial.cpp.o.d"
  "/root/repo/src/workloads/black.cpp" "src/workloads/CMakeFiles/tbp_workloads.dir/black.cpp.o" "gcc" "src/workloads/CMakeFiles/tbp_workloads.dir/black.cpp.o.d"
  "/root/repo/src/workloads/cfd.cpp" "src/workloads/CMakeFiles/tbp_workloads.dir/cfd.cpp.o" "gcc" "src/workloads/CMakeFiles/tbp_workloads.dir/cfd.cpp.o.d"
  "/root/repo/src/workloads/common.cpp" "src/workloads/CMakeFiles/tbp_workloads.dir/common.cpp.o" "gcc" "src/workloads/CMakeFiles/tbp_workloads.dir/common.cpp.o.d"
  "/root/repo/src/workloads/conv.cpp" "src/workloads/CMakeFiles/tbp_workloads.dir/conv.cpp.o" "gcc" "src/workloads/CMakeFiles/tbp_workloads.dir/conv.cpp.o.d"
  "/root/repo/src/workloads/hotspot.cpp" "src/workloads/CMakeFiles/tbp_workloads.dir/hotspot.cpp.o" "gcc" "src/workloads/CMakeFiles/tbp_workloads.dir/hotspot.cpp.o.d"
  "/root/repo/src/workloads/kmeans.cpp" "src/workloads/CMakeFiles/tbp_workloads.dir/kmeans.cpp.o" "gcc" "src/workloads/CMakeFiles/tbp_workloads.dir/kmeans.cpp.o.d"
  "/root/repo/src/workloads/lbm.cpp" "src/workloads/CMakeFiles/tbp_workloads.dir/lbm.cpp.o" "gcc" "src/workloads/CMakeFiles/tbp_workloads.dir/lbm.cpp.o.d"
  "/root/repo/src/workloads/mri.cpp" "src/workloads/CMakeFiles/tbp_workloads.dir/mri.cpp.o" "gcc" "src/workloads/CMakeFiles/tbp_workloads.dir/mri.cpp.o.d"
  "/root/repo/src/workloads/mst.cpp" "src/workloads/CMakeFiles/tbp_workloads.dir/mst.cpp.o" "gcc" "src/workloads/CMakeFiles/tbp_workloads.dir/mst.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/tbp_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/tbp_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/spmv.cpp" "src/workloads/CMakeFiles/tbp_workloads.dir/spmv.cpp.o" "gcc" "src/workloads/CMakeFiles/tbp_workloads.dir/spmv.cpp.o.d"
  "/root/repo/src/workloads/sssp.cpp" "src/workloads/CMakeFiles/tbp_workloads.dir/sssp.cpp.o" "gcc" "src/workloads/CMakeFiles/tbp_workloads.dir/sssp.cpp.o.d"
  "/root/repo/src/workloads/stream.cpp" "src/workloads/CMakeFiles/tbp_workloads.dir/stream.cpp.o" "gcc" "src/workloads/CMakeFiles/tbp_workloads.dir/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/tbp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tbp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
