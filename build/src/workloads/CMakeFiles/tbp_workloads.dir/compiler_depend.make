# Empty compiler generated dependencies file for tbp_workloads.
# This may be replaced when dependencies are built.
