file(REMOVE_RECURSE
  "CMakeFiles/tbp_workloads.dir/bfs.cpp.o"
  "CMakeFiles/tbp_workloads.dir/bfs.cpp.o.d"
  "CMakeFiles/tbp_workloads.dir/binomial.cpp.o"
  "CMakeFiles/tbp_workloads.dir/binomial.cpp.o.d"
  "CMakeFiles/tbp_workloads.dir/black.cpp.o"
  "CMakeFiles/tbp_workloads.dir/black.cpp.o.d"
  "CMakeFiles/tbp_workloads.dir/cfd.cpp.o"
  "CMakeFiles/tbp_workloads.dir/cfd.cpp.o.d"
  "CMakeFiles/tbp_workloads.dir/common.cpp.o"
  "CMakeFiles/tbp_workloads.dir/common.cpp.o.d"
  "CMakeFiles/tbp_workloads.dir/conv.cpp.o"
  "CMakeFiles/tbp_workloads.dir/conv.cpp.o.d"
  "CMakeFiles/tbp_workloads.dir/hotspot.cpp.o"
  "CMakeFiles/tbp_workloads.dir/hotspot.cpp.o.d"
  "CMakeFiles/tbp_workloads.dir/kmeans.cpp.o"
  "CMakeFiles/tbp_workloads.dir/kmeans.cpp.o.d"
  "CMakeFiles/tbp_workloads.dir/lbm.cpp.o"
  "CMakeFiles/tbp_workloads.dir/lbm.cpp.o.d"
  "CMakeFiles/tbp_workloads.dir/mri.cpp.o"
  "CMakeFiles/tbp_workloads.dir/mri.cpp.o.d"
  "CMakeFiles/tbp_workloads.dir/mst.cpp.o"
  "CMakeFiles/tbp_workloads.dir/mst.cpp.o.d"
  "CMakeFiles/tbp_workloads.dir/registry.cpp.o"
  "CMakeFiles/tbp_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/tbp_workloads.dir/spmv.cpp.o"
  "CMakeFiles/tbp_workloads.dir/spmv.cpp.o.d"
  "CMakeFiles/tbp_workloads.dir/sssp.cpp.o"
  "CMakeFiles/tbp_workloads.dir/sssp.cpp.o.d"
  "CMakeFiles/tbp_workloads.dir/stream.cpp.o"
  "CMakeFiles/tbp_workloads.dir/stream.cpp.o.d"
  "libtbp_workloads.a"
  "libtbp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
