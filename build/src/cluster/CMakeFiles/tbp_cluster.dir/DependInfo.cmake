
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/feature.cpp" "src/cluster/CMakeFiles/tbp_cluster.dir/feature.cpp.o" "gcc" "src/cluster/CMakeFiles/tbp_cluster.dir/feature.cpp.o.d"
  "/root/repo/src/cluster/hierarchical.cpp" "src/cluster/CMakeFiles/tbp_cluster.dir/hierarchical.cpp.o" "gcc" "src/cluster/CMakeFiles/tbp_cluster.dir/hierarchical.cpp.o.d"
  "/root/repo/src/cluster/kmeans.cpp" "src/cluster/CMakeFiles/tbp_cluster.dir/kmeans.cpp.o" "gcc" "src/cluster/CMakeFiles/tbp_cluster.dir/kmeans.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/tbp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
