file(REMOVE_RECURSE
  "CMakeFiles/tbp_cluster.dir/feature.cpp.o"
  "CMakeFiles/tbp_cluster.dir/feature.cpp.o.d"
  "CMakeFiles/tbp_cluster.dir/hierarchical.cpp.o"
  "CMakeFiles/tbp_cluster.dir/hierarchical.cpp.o.d"
  "CMakeFiles/tbp_cluster.dir/kmeans.cpp.o"
  "CMakeFiles/tbp_cluster.dir/kmeans.cpp.o.d"
  "libtbp_cluster.a"
  "libtbp_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbp_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
