# Empty compiler generated dependencies file for tbp_cluster.
# This may be replaced when dependencies are built.
