file(REMOVE_RECURSE
  "libtbp_cluster.a"
)
