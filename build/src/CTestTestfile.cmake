# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("stats")
subdirs("cluster")
subdirs("markov")
subdirs("trace")
subdirs("profile")
subdirs("sim")
subdirs("core")
subdirs("baselines")
subdirs("workloads")
subdirs("analytical")
subdirs("harness")
