file(REMOVE_RECURSE
  "libtbp_harness.a"
)
