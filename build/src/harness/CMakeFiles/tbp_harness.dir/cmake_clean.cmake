file(REMOVE_RECURSE
  "CMakeFiles/tbp_harness.dir/cache.cpp.o"
  "CMakeFiles/tbp_harness.dir/cache.cpp.o.d"
  "CMakeFiles/tbp_harness.dir/cli.cpp.o"
  "CMakeFiles/tbp_harness.dir/cli.cpp.o.d"
  "CMakeFiles/tbp_harness.dir/csv.cpp.o"
  "CMakeFiles/tbp_harness.dir/csv.cpp.o.d"
  "CMakeFiles/tbp_harness.dir/experiment.cpp.o"
  "CMakeFiles/tbp_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/tbp_harness.dir/table.cpp.o"
  "CMakeFiles/tbp_harness.dir/table.cpp.o.d"
  "libtbp_harness.a"
  "libtbp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
