# Empty dependencies file for tbp_harness.
# This may be replaced when dependencies are built.
