# Empty dependencies file for tbp_analytical.
# This may be replaced when dependencies are built.
