file(REMOVE_RECURSE
  "libtbp_analytical.a"
)
