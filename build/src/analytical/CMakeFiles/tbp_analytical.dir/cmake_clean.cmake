file(REMOVE_RECURSE
  "CMakeFiles/tbp_analytical.dir/mwp_cwp.cpp.o"
  "CMakeFiles/tbp_analytical.dir/mwp_cwp.cpp.o.d"
  "libtbp_analytical.a"
  "libtbp_analytical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbp_analytical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
