#include "baselines/ideal_simpoint.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tbp::baselines {
namespace {

/// A unit with a given BBV and IPC (insts fixed at 1000).
sim::FixedUnit unit(std::vector<std::uint32_t> bbv, double ipc) {
  sim::FixedUnit u;
  u.start_cycle = 0;
  u.end_cycle = static_cast<std::uint64_t>(1000.0 / ipc);
  u.warp_insts = 1000;
  u.thread_insts = 32000;
  u.bbv = std::move(bbv);
  return u;
}

TEST(IdealSimpointTest, NormalizedBbv) {
  sim::FixedUnit u;
  u.bbv = {10, 30, 0, 60};
  const cluster::FeatureVector f = normalized_bbv(u);
  EXPECT_DOUBLE_EQ(f[0], 0.1);
  EXPECT_DOUBLE_EQ(f[1], 0.3);
  EXPECT_DOUBLE_EQ(f[2], 0.0);
  EXPECT_DOUBLE_EQ(f[3], 0.6);
}

TEST(IdealSimpointTest, NormalizedBbvOfEmptyUnitIsZeros) {
  sim::FixedUnit u;
  u.bbv = {0, 0};
  const cluster::FeatureVector f = normalized_bbv(u);
  EXPECT_DOUBLE_EQ(f[0], 0.0);
  EXPECT_DOUBLE_EQ(f[1], 0.0);
}

TEST(IdealSimpointTest, TwoPhaseProgramFindsTwoSimpoints) {
  std::vector<sim::FixedUnit> units;
  // Phase A: bb0-heavy, ipc 2.  Phase B: bb1-heavy, ipc 5.
  for (int i = 0; i < 20; ++i) units.push_back(unit({900, 50, 50}, 2.0));
  for (int i = 0; i < 10; ++i) units.push_back(unit({50, 900, 50}, 5.0));
  const SimpointResult result = ideal_simpoint(units);
  EXPECT_EQ(result.selected_k, 2u);
  ASSERT_EQ(result.simulation_points.size(), 2u);
  // Predicted cycles: 20 kinsts at ipc 2 + 10 kinsts at ipc 5.
  const double expected_ipc = 30000.0 / (20000.0 / 2.0 + 10000.0 / 5.0);
  EXPECT_NEAR(result.predicted_ipc, expected_ipc, 0.05 * expected_ipc);
  // Sample: 2 of 30 units.
  EXPECT_NEAR(result.sample_fraction, 2.0 / 30.0, 1e-9);
}

TEST(IdealSimpointTest, WeightsMatchClusterSizes) {
  std::vector<sim::FixedUnit> units;
  for (int i = 0; i < 30; ++i) units.push_back(unit({1000, 0}, 2.0));
  for (int i = 0; i < 10; ++i) units.push_back(unit({0, 1000}, 4.0));
  const SimpointResult result = ideal_simpoint(units);
  ASSERT_EQ(result.weights.size(), result.simulation_points.size());
  double weight_sum = 0.0;
  for (double w : result.weights) weight_sum += w;
  EXPECT_NEAR(weight_sum, 1.0, 1e-12);
}

TEST(IdealSimpointTest, HomogeneousUnitsCollapseToOnePoint) {
  std::vector<sim::FixedUnit> units(25, unit({500, 500}, 3.0));
  const SimpointResult result = ideal_simpoint(units);
  EXPECT_EQ(result.selected_k, 1u);
  EXPECT_NEAR(result.predicted_ipc, 3.0, 1e-2);  // integer cycle rounding
}

TEST(IdealSimpointTest, BbvBlindSpotMissesTlpOutliers) {
  // The paper's mst failure mode: outlier units execute *more of the same
  // basic blocks* at a different IPC.  Normalized BBVs are identical, so
  // SimPoint cannot separate them and inherits a biased prediction.
  std::vector<sim::FixedUnit> units;
  for (int i = 0; i < 20; ++i) units.push_back(unit({800, 200}, 4.0));
  for (int i = 0; i < 5; ++i) {
    sim::FixedUnit outlier = unit({800, 200}, 1.0);  // same mix, 4x slower
    units.push_back(outlier);
  }
  const SimpointResult result = ideal_simpoint(units);
  EXPECT_EQ(result.selected_k, 1u);  // BBVs cannot tell them apart
  const double true_ipc = 25000.0 / (20000.0 / 4.0 + 5000.0 / 1.0);
  // The single simulation point misrepresents the mixture: error is large.
  EXPECT_GT(std::abs(result.predicted_ipc - true_ipc) / true_ipc, 0.2);
}

TEST(IdealSimpointTest, DeterministicForSeed) {
  std::vector<sim::FixedUnit> units;
  for (int i = 0; i < 30; ++i) {
    units.push_back(unit({static_cast<std::uint32_t>(100 + i * 10),
                          static_cast<std::uint32_t>(900 - i * 10)},
                         2.0 + 0.05 * i));
  }
  const SimpointResult a = ideal_simpoint(units);
  const SimpointResult b = ideal_simpoint(units);
  EXPECT_EQ(a.selected_k, b.selected_k);
  EXPECT_EQ(a.simulation_points, b.simulation_points);
  EXPECT_DOUBLE_EQ(a.predicted_ipc, b.predicted_ipc);
}

TEST(IdealSimpointTest, EmptyUnits) {
  const SimpointResult result = ideal_simpoint({});
  EXPECT_EQ(result.selected_k, 0u);
  EXPECT_DOUBLE_EQ(result.predicted_ipc, 0.0);
}

TEST(IdealSimpointTest, MaxKClampsSelection) {
  std::vector<sim::FixedUnit> units;
  for (int p = 0; p < 6; ++p) {
    for (int i = 0; i < 5; ++i) {
      std::vector<std::uint32_t> bbv(6, 0);
      bbv[static_cast<std::size_t>(p)] = 1000;
      units.push_back(unit(std::move(bbv), 1.0 + p));
    }
  }
  SimpointOptions options;
  options.max_k = 3;
  const SimpointResult result = ideal_simpoint(units, options);
  EXPECT_LE(result.selected_k, 3u);
}

}  // namespace
}  // namespace tbp::baselines
