#include "baselines/systematic_sampling.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tbp::baselines {
namespace {

sim::FixedUnit unit(std::uint64_t insts, std::uint64_t cycles) {
  sim::FixedUnit u;
  u.start_cycle = 0;
  u.end_cycle = cycles;
  u.warp_insts = insts;
  return u;
}

TEST(SystematicSamplingTest, EmptyUnits) {
  const SystematicSamplingResult result = systematic_sampling({});
  EXPECT_EQ(result.n_units_total, 0u);
  EXPECT_DOUBLE_EQ(result.predicted_ipc, 0.0);
}

TEST(SystematicSamplingTest, StrideIsThePeriod) {
  std::vector<sim::FixedUnit> units(50, unit(1000, 500));
  const SystematicSamplingResult result = systematic_sampling(units);
  ASSERT_GE(result.n_units_sampled, 4u);
  for (std::size_t i = 1; i < result.sampled_units.size(); ++i) {
    EXPECT_EQ(result.sampled_units[i] - result.sampled_units[i - 1], 10u);
  }
  EXPECT_LT(result.start_offset, 10u);
}

TEST(SystematicSamplingTest, UniformUnitsPredictExactly) {
  std::vector<sim::FixedUnit> units(100, unit(1000, 500));
  const SystematicSamplingResult result = systematic_sampling(units);
  EXPECT_DOUBLE_EQ(result.predicted_ipc, 2.0);
  EXPECT_NEAR(result.sample_fraction, 0.1, 0.01);
}

TEST(SystematicSamplingTest, SampleCostProportionalToLength) {
  // The paper's critique: doubling the program doubles the simulated
  // instructions, regular or not.
  std::vector<sim::FixedUnit> small(50, unit(1000, 500));
  std::vector<sim::FixedUnit> large(100, unit(1000, 500));
  const auto a = systematic_sampling(small);
  const auto b = systematic_sampling(large);
  EXPECT_NEAR(static_cast<double>(b.n_units_sampled),
              2.0 * static_cast<double>(a.n_units_sampled), 1.0);
}

TEST(SystematicSamplingTest, FewerUnitsThanPeriodStillSamples) {
  std::vector<sim::FixedUnit> units(3, unit(1000, 400));
  const SystematicSamplingResult result = systematic_sampling(units);
  EXPECT_GE(result.n_units_sampled, 1u);
  EXPECT_GT(result.predicted_ipc, 0.0);
}

TEST(SystematicSamplingTest, PeriodConfigurable) {
  std::vector<sim::FixedUnit> units(100, unit(1000, 500));
  SystematicSamplingOptions options;
  options.period = 4;
  const SystematicSamplingResult result = systematic_sampling(units, options);
  EXPECT_EQ(result.n_units_sampled, (100 - result.start_offset + 3) / 4);
}

TEST(SystematicSamplingTest, DeterministicForSeed) {
  std::vector<sim::FixedUnit> units(60, unit(1000, 500));
  const auto a = systematic_sampling(units);
  const auto b = systematic_sampling(units);
  EXPECT_EQ(a.sampled_units, b.sampled_units);
}

TEST(SystematicSamplingTest, ResonanceWithProgramPeriodBiases) {
  // Alternating fast/slow units with period 2; a sampler whose period is a
  // multiple of the program period sees only one phase.
  std::vector<sim::FixedUnit> units;
  for (int i = 0; i < 100; ++i) {
    units.push_back(i % 2 == 0 ? unit(1000, 250) : unit(1000, 1000));
  }
  SystematicSamplingOptions options;
  options.period = 2;  // resonates
  const SystematicSamplingResult result = systematic_sampling(units, options);
  const double true_ipc = 100000.0 / (50 * 250.0 + 50 * 1000.0);
  // Sees only ipc-4 or only ipc-1 units depending on the offset.
  EXPECT_GT(std::abs(result.predicted_ipc - true_ipc) / true_ipc, 0.3);
}

}  // namespace
}  // namespace tbp::baselines
