#include "baselines/random_sampling.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tbp::baselines {
namespace {

sim::FixedUnit unit(std::uint64_t insts, std::uint64_t cycles,
                    std::uint64_t start = 0) {
  sim::FixedUnit u;
  u.start_cycle = start;
  u.end_cycle = start + cycles;
  u.warp_insts = insts;
  u.thread_insts = insts * 32;
  return u;
}

TEST(RandomSamplingTest, EmptyUnits) {
  const RandomSamplingResult result = random_sampling({});
  EXPECT_EQ(result.n_units_total, 0u);
  EXPECT_DOUBLE_EQ(result.predicted_ipc, 0.0);
}

TEST(RandomSamplingTest, UniformUnitsPredictExactly) {
  std::vector<sim::FixedUnit> units(50, unit(1000, 500));  // ipc 2 everywhere
  const RandomSamplingResult result = random_sampling(units);
  EXPECT_DOUBLE_EQ(result.predicted_ipc, 2.0);
  EXPECT_EQ(result.n_units_sampled, 5u);
  EXPECT_NEAR(result.sample_fraction, 0.1, 1e-12);
}

TEST(RandomSamplingTest, SampleFractionHonored) {
  std::vector<sim::FixedUnit> units(100, unit(1000, 500));
  RandomSamplingOptions options;
  options.sample_fraction = 0.25;
  const RandomSamplingResult result = random_sampling(units, options);
  EXPECT_EQ(result.n_units_sampled, 25u);
}

TEST(RandomSamplingTest, AtLeastOneUnitSampled) {
  std::vector<sim::FixedUnit> units(3, unit(1000, 500));
  RandomSamplingOptions options;
  options.sample_fraction = 0.01;
  const RandomSamplingResult result = random_sampling(units, options);
  EXPECT_EQ(result.n_units_sampled, 1u);
}

TEST(RandomSamplingTest, DeterministicForSeed) {
  std::vector<sim::FixedUnit> units;
  for (std::uint64_t i = 0; i < 40; ++i) {
    units.push_back(unit(1000, 300 + 20 * (i % 7)));
  }
  const RandomSamplingResult a = random_sampling(units);
  const RandomSamplingResult b = random_sampling(units);
  EXPECT_EQ(a.sampled_units, b.sampled_units);
  EXPECT_DOUBLE_EQ(a.predicted_ipc, b.predicted_ipc);
}

TEST(RandomSamplingTest, DifferentSeedsPickDifferentUnits) {
  std::vector<sim::FixedUnit> units(200, unit(1000, 500));
  RandomSamplingOptions a;
  RandomSamplingOptions b;
  b.seed = a.seed + 1;
  EXPECT_NE(random_sampling(units, a).sampled_units,
            random_sampling(units, b).sampled_units);
}

TEST(RandomSamplingTest, SampledIndicesAreValidAndUnique) {
  std::vector<sim::FixedUnit> units(60, unit(1000, 500));
  const RandomSamplingResult result = random_sampling(units);
  std::vector<std::size_t> seen;
  for (std::size_t u : result.sampled_units) {
    EXPECT_LT(u, units.size());
    seen.push_back(u);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end());
}

TEST(RandomSamplingTest, NaiveMeanOfIpcEstimator) {
  // Units with ipc 1 and ipc 4: the naive estimator averages unit IPCs to
  // 2.5, although the true aggregate is 2000/1250 = 1.6.  This bias — slow
  // units deserve more cycle weight — is the paper's explanation for
  // Random's poor accuracy on heterogeneous kernels, and the test pins it.
  std::vector<sim::FixedUnit> units = {unit(1000, 1000), unit(1000, 250)};
  RandomSamplingOptions options;
  options.sample_fraction = 1.0;  // sample everything
  const RandomSamplingResult result = random_sampling(units, options);
  EXPECT_DOUBLE_EQ(result.predicted_ipc, 2.5);
  EXPECT_GT(result.predicted_ipc, 2000.0 / 1250.0);
}

}  // namespace
}  // namespace tbp::baselines
