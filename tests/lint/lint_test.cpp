// tbp_lint fixture suite: every rule family is pinned to exact rule IDs
// and file:line positions on deliberately-broken fixture sources, the
// suppression syntax is exercised in both forms, exit codes are checked,
// and — the teeth — the real repository tree must lint clean.
#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/driver.hpp"
#include "lint/rules.hpp"

namespace {

using tbp_lint::Diagnostic;
using tbp_lint::LintConfig;
using tbp_lint::LintOptions;
using tbp_lint::LintResult;
using tbp_lint::OutputFormat;
using tbp_lint::Severity;

std::string fixture_path(const std::string& name) {
  return std::string(TBP_LINT_FIXTURE_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Fixture-directory policy: no allowlists, fixtures are order-sensitive.
LintConfig fixture_config() {
  LintConfig config;
  config.order_sensitive = {"tests/lint/fixtures/"};
  return config;
}

/// Lints one fixture under the repo-relative path the rules expect.
std::vector<Diagnostic> lint_fixture(const std::string& name) {
  return tbp_lint::lint_source("tests/lint/fixtures/" + name,
                               read_file(fixture_path(name)),
                               fixture_config());
}

std::vector<std::pair<std::string, int>> rule_lines(
    const std::vector<Diagnostic>& diags) {
  std::vector<std::pair<std::string, int>> out;
  out.reserve(diags.size());
  for (const Diagnostic& d : diags) out.emplace_back(d.rule, d.line);
  return out;
}

TEST(LintFixtures, DeterminismRulesPinpointEachViolation) {
  const auto diags = lint_fixture("determinism_violation.cpp");
  const std::vector<std::pair<std::string, int>> expected = {
      {"determinism-rand", 11},  {"determinism-rand", 15},
      {"determinism-clock", 20}, {"determinism-time", 25},
      {"determinism-getenv", 29},
  };
  EXPECT_EQ(rule_lines(diags), expected);
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.severity, Severity::kError);
    EXPECT_EQ(d.file, "tests/lint/fixtures/determinism_violation.cpp");
  }
}

TEST(LintFixtures, UnorderedIterationFlagsRawLoopsOnly) {
  const auto diags = lint_fixture("unordered_iter_violation.cpp");
  const std::vector<std::pair<std::string, int>> expected = {
      {"unordered-iter", 15},
      {"unordered-iter", 23},
  };
  EXPECT_EQ(rule_lines(diags), expected)
      << "the sorted-intermediate loop must stay exempt";
}

TEST(LintFixtures, ErrorDisciplineFlagsDeclAndCallSite) {
  const auto diags = lint_fixture("error_discipline_violation.cpp");
  const std::vector<std::pair<std::string, int>> expected = {
      {"nodiscard-status", 10},
      {"discarded-status", 15},
  };
  EXPECT_EQ(rule_lines(diags), expected)
      << "[[nodiscard]] decls and (void) discards must stay clean";
}

TEST(LintFixtures, HygieneFlagsMissingPragmaOnceAndNakedNew) {
  const auto diags = lint_fixture("hygiene_violation.hpp");
  const std::vector<std::pair<std::string, int>> expected = {
      {"pragma-once", 1},
      {"naked-new", 6},
      {"naked-new", 10},
  };
  ASSERT_EQ(rule_lines(diags), expected);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_EQ(diags[1].severity, Severity::kWarning);
}

TEST(LintFixtures, CleanFileProducesNoFindings) {
  EXPECT_TRUE(lint_fixture("clean.cpp").empty());
}

TEST(LintFixtures, JustifiedSuppressionsSilenceBothForms) {
  EXPECT_TRUE(lint_fixture("suppressed.cpp").empty())
      << "own-line and same-line allow() with justification must both work";
}

TEST(LintFixtures, UnjustifiedSuppressionIsItselfAFinding) {
  const auto diags = lint_fixture("bad_suppression.cpp");
  const std::vector<std::pair<std::string, int>> expected = {
      {"lint-suppression", 7},
  };
  EXPECT_EQ(rule_lines(diags), expected)
      << "the allow is honored once, but the missing justification reports";
}

TEST(LintDriver, FixtureDirectoryScanFailsWithExitCodeOne) {
  LintOptions options;
  options.root = TBP_LINT_FIXTURE_DIR;
  options.subdirs = {"."};
  options.excludes = {};
  options.config = fixture_config();
  // Under root=fixtures the repo-relative paths lose their prefix; the
  // empty prefix makes every scanned file order-sensitive.
  options.config.order_sensitive = {""};
  const LintResult result = tbp_lint::run_lint(options);
  EXPECT_FALSE(result.io_error);
  EXPECT_GE(result.files_scanned, 7u);
  EXPECT_FALSE(result.diagnostics.empty());
  EXPECT_EQ(tbp_lint::lint_exit_code(result, /*werror=*/false), 1);
  EXPECT_EQ(tbp_lint::lint_exit_code(result, /*werror=*/true), 1);
}

TEST(LintDriver, MissingRootYieldsExitCodeTwo) {
  LintOptions options;
  options.root = fixture_path("does-not-exist");
  const LintResult result = tbp_lint::run_lint(options);
  EXPECT_TRUE(result.io_error);
  EXPECT_EQ(tbp_lint::lint_exit_code(result, /*werror=*/false), 2);
}

TEST(LintDriver, CleanResultYieldsExitCodeZero) {
  LintResult clean;
  EXPECT_EQ(tbp_lint::lint_exit_code(clean, /*werror=*/false), 0);
  EXPECT_EQ(tbp_lint::lint_exit_code(clean, /*werror=*/true), 0);
  LintResult warning_only;
  warning_only.diagnostics.push_back(Diagnostic{
      "a.cpp", 1, "naked-new", Severity::kWarning, "m"});
  EXPECT_EQ(tbp_lint::lint_exit_code(warning_only, /*werror=*/false), 0);
  EXPECT_EQ(tbp_lint::lint_exit_code(warning_only, /*werror=*/true), 1);
}

TEST(LintOutput, TextAndGithubFormats) {
  const Diagnostic diag{"src/a.cpp", 42, "determinism-rand",
                        Severity::kError, "no rand"};
  EXPECT_EQ(tbp_lint::format_diagnostic(diag, OutputFormat::kText),
            "src/a.cpp:42: error: [determinism-rand] no rand");
  EXPECT_EQ(tbp_lint::format_diagnostic(diag, OutputFormat::kGithub),
            "::error file=src/a.cpp,line=42,title=tbp-lint "
            "determinism-rand::[determinism-rand] no rand");
}

TEST(LintOutput, RuleRegistryHasUniqueIdsCoveringEmittedRules) {
  std::set<std::string> ids;
  for (const tbp_lint::RuleInfo& info : tbp_lint::rule_registry()) {
    EXPECT_TRUE(ids.insert(info.id).second) << "duplicate rule " << info.id;
  }
  for (const char* emitted :
       {"determinism-rand", "determinism-clock", "determinism-time",
        "determinism-getenv", "unordered-iter", "nodiscard-status",
        "discarded-status", "pragma-once", "naked-new", "lint-suppression"}) {
    EXPECT_EQ(ids.count(emitted), 1u) << emitted;
  }
}

// The acceptance gate: the real tree has zero unsuppressed findings under
// the repo policy.  A regression anywhere in src/tools/bench/tests turns
// this test (and the tbp_lint_tree ctest entry) red.
TEST(LintRepo, WholeTreeIsClean) {
  LintOptions options;
  options.root = TBP_LINT_SOURCE_DIR;
  const LintResult result = tbp_lint::run_lint(options);
  ASSERT_FALSE(result.io_error) << result.io_message;
  EXPECT_GT(result.files_scanned, 100u);
  for (const Diagnostic& d : result.diagnostics) {
    ADD_FAILURE() << tbp_lint::format_diagnostic(d, OutputFormat::kText);
  }
  EXPECT_EQ(tbp_lint::lint_exit_code(result, /*werror=*/true), 0);
}

}  // namespace
