// tbp_lint fixture suite: every rule family is pinned to exact rule IDs
// and file:line positions on deliberately-broken fixture sources, the
// suppression syntax is exercised in both forms, exit codes are checked,
// and — the teeth — the real repository tree must lint clean.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/driver.hpp"
#include "lint/lexer.hpp"
#include "lint/rules.hpp"
#include "obs/report.hpp"

namespace {

using tbp_lint::Diagnostic;
using tbp_lint::LintConfig;
using tbp_lint::LintOptions;
using tbp_lint::LintResult;
using tbp_lint::OutputFormat;
using tbp_lint::Severity;

std::string fixture_path(const std::string& name) {
  return std::string(TBP_LINT_FIXTURE_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Fixture-directory policy: no allowlists, fixtures are order-sensitive
/// and in scope for the shard/lock/layering passes with a tiny rank table.
LintConfig fixture_config() {
  LintConfig config;
  config.order_sensitive = {"tests/lint/fixtures/"};
  config.shard_scope = {"tests/lint/fixtures/"};
  config.shard_guard_tokens = {"shard_mode_"};
  config.layer_ranks = {{"support", 0}, {"store", 5}};
  config.prof_include_allowlist = {
      "tests/lint/fixtures/prof_quarantine_clean.cpp"};
  return config;
}

/// Lints one fixture under the repo-relative path the rules expect.
std::vector<Diagnostic> lint_fixture(const std::string& name) {
  return tbp_lint::lint_source("tests/lint/fixtures/" + name,
                               read_file(fixture_path(name)),
                               fixture_config());
}

/// Lints a fixture under an arbitrary repo-relative path — the layering
/// pass keys off the directory a file claims to live in.
std::vector<Diagnostic> lint_fixture_as(const std::string& path,
                                        const std::string& name) {
  return tbp_lint::lint_source(path, read_file(fixture_path(name)),
                               fixture_config());
}

std::vector<std::pair<std::string, int>> rule_lines(
    const std::vector<Diagnostic>& diags) {
  std::vector<std::pair<std::string, int>> out;
  out.reserve(diags.size());
  for (const Diagnostic& d : diags) out.emplace_back(d.rule, d.line);
  return out;
}

TEST(LintFixtures, DeterminismRulesPinpointEachViolation) {
  const auto diags = lint_fixture("determinism_violation.cpp");
  const std::vector<std::pair<std::string, int>> expected = {
      {"determinism-rand", 11},  {"determinism-rand", 15},
      {"determinism-clock", 20}, {"determinism-time", 25},
      {"determinism-getenv", 29},
  };
  EXPECT_EQ(rule_lines(diags), expected);
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.severity, Severity::kError);
    EXPECT_EQ(d.file, "tests/lint/fixtures/determinism_violation.cpp");
  }
}

TEST(LintFixtures, UnorderedIterationFlagsRawLoopsOnly) {
  const auto diags = lint_fixture("unordered_iter_violation.cpp");
  const std::vector<std::pair<std::string, int>> expected = {
      {"unordered-iter", 15},
      {"unordered-iter", 23},
  };
  EXPECT_EQ(rule_lines(diags), expected)
      << "the sorted-intermediate loop must stay exempt";
}

TEST(LintFixtures, ErrorDisciplineFlagsDeclAndCallSite) {
  const auto diags = lint_fixture("error_discipline_violation.cpp");
  const std::vector<std::pair<std::string, int>> expected = {
      {"nodiscard-status", 10},
      {"discarded-status", 15},
  };
  EXPECT_EQ(rule_lines(diags), expected)
      << "[[nodiscard]] decls and (void) discards must stay clean";
}

TEST(LintFixtures, HygieneFlagsMissingPragmaOnceAndNakedNew) {
  const auto diags = lint_fixture("hygiene_violation.hpp");
  const std::vector<std::pair<std::string, int>> expected = {
      {"pragma-once", 1},
      {"naked-new", 6},
      {"naked-new", 10},
  };
  ASSERT_EQ(rule_lines(diags), expected);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_EQ(diags[1].severity, Severity::kWarning);
}

TEST(LintFixtures, CleanFileProducesNoFindings) {
  EXPECT_TRUE(lint_fixture("clean.cpp").empty());
}

TEST(LintFixtures, JustifiedSuppressionsSilenceBothForms) {
  EXPECT_TRUE(lint_fixture("suppressed.cpp").empty())
      << "own-line and same-line allow() with justification must both work";
}

TEST(LintFixtures, UnjustifiedSuppressionIsItselfAFinding) {
  const auto diags = lint_fixture("bad_suppression.cpp");
  const std::vector<std::pair<std::string, int>> expected = {
      {"lint-suppression", 7},
  };
  EXPECT_EQ(rule_lines(diags), expected)
      << "the allow is honored once, but the missing justification reports";
}

// --- shard-safety ---------------------------------------------------------

TEST(LintFixtures, ShardSafetyFlagsWorkerReachAndDishonestRoute) {
  const auto diags = lint_fixture("shard_safety_violation.cpp");
  const std::vector<std::pair<std::string, int>> expected = {
      {"shard-safety", 21},  // helper (worker-reachable) writes shared state
      {"shard-safety", 22},  // helper calls a commit-phase API
      {"shard-safety", 26},  // route shim never touches the shard plumbing
  };
  ASSERT_EQ(rule_lines(diags), expected);
  EXPECT_NE(diags[0].message.find("shared_counter_"), std::string::npos);
  EXPECT_NE(diags[1].message.find("commit_tick"), std::string::npos);
  EXPECT_NE(diags[2].message.find("bad_route"), std::string::npos);
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.severity, Severity::kError);
    EXPECT_EQ(d.file, "tests/lint/fixtures/shard_safety_violation.cpp");
  }
}

TEST(LintFixtures, ShardSafetyJustifiedAllowsSilenceBothForms) {
  const auto diags = lint_fixture("shard_safety_suppressed.cpp");
  EXPECT_TRUE(diags.empty()) << tbp_lint::format_diagnostic(
      diags.front(), OutputFormat::kText);
}

TEST(LintFixtures, ShardSafetyHonestRouteAndLocalStateAreClean) {
  const auto diags = lint_fixture("shard_safety_clean.cpp");
  EXPECT_TRUE(diags.empty()) << tbp_lint::format_diagnostic(
      diags.front(), OutputFormat::kText);
}

// --- guarded-by -----------------------------------------------------------

TEST(LintFixtures, GuardedByFlagsUnlockedAccessAndUnlockedHelperCall) {
  const auto diags = lint_fixture("guarded_by_violation.cpp");
  const std::vector<std::pair<std::string, int>> expected = {
      {"guarded-by", 23},  // value_ touched with no lock scope in sight
      {"guarded-by", 26},  // flush_locked() called outside any lock scope
  };
  ASSERT_EQ(rule_lines(diags), expected);
  EXPECT_NE(diags[0].message.find("value_"), std::string::npos);
  EXPECT_NE(diags[1].message.find("flush_locked"), std::string::npos);
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.severity, Severity::kError);
    EXPECT_EQ(d.file, "tests/lint/fixtures/guarded_by_violation.cpp");
  }
}

TEST(LintFixtures, GuardedByJustifiedAllowSilences) {
  const auto diags = lint_fixture("guarded_by_suppressed.cpp");
  EXPECT_TRUE(diags.empty()) << tbp_lint::format_diagnostic(
      diags.front(), OutputFormat::kText);
}

TEST(LintFixtures, GuardedByLockScopesAndLockedHelpersAreClean) {
  const auto diags = lint_fixture("guarded_by_clean.cpp");
  EXPECT_TRUE(diags.empty()) << tbp_lint::format_diagnostic(
      diags.front(), OutputFormat::kText);
}

// --- layering -------------------------------------------------------------

TEST(LintFixtures, LayeringFlagsUpwardIncludeEdge) {
  const auto diags = lint_fixture_as("src/support/layering_violation.cpp",
                                     "layering_violation.cpp");
  const std::vector<std::pair<std::string, int>> expected = {
      {"layering", 3},  // support (rank 0) -> store (rank 5)
  };
  ASSERT_EQ(rule_lines(diags), expected);
  EXPECT_NE(diags[0].message.find("'support' -> 'store'"), std::string::npos);
  EXPECT_NE(diags[0].message.find("DESIGN.md"), std::string::npos);
  EXPECT_EQ(diags[0].severity, Severity::kError);
}

TEST(LintFixtures, LayeringJustifiedAllowSilences) {
  const auto diags = lint_fixture_as("src/support/layering_suppressed.cpp",
                                     "layering_suppressed.cpp");
  EXPECT_TRUE(diags.empty()) << tbp_lint::format_diagnostic(
      diags.front(), OutputFormat::kText);
}

TEST(LintFixtures, LayeringDownwardIncludeIsClean) {
  const auto diags = lint_fixture_as("src/store/layering_clean.cpp",
                                     "layering_clean.cpp");
  EXPECT_TRUE(diags.empty()) << tbp_lint::format_diagnostic(
      diags.front(), OutputFormat::kText);
}

// --- prof isolation / quarantine ------------------------------------------

TEST(LintFixtures, ProfQuarantineFlagsIncludeAndSinkSites) {
  const auto diags = lint_fixture("prof_quarantine_violation.cpp");
  const std::vector<std::pair<std::string, int>> expected = {
      {"prof-isolation", 4},    // prof/ include outside the allowlist
      {"prof-quarantine", 16},  // timer.seconds() -> "predicted_ipc"
      {"prof-quarantine", 17},  // timer.busy_seconds() -> "cycles"
      {"prof-quarantine", 18},  // imbalance_ratio() -> "skew"
  };
  ASSERT_EQ(rule_lines(diags), expected);
  EXPECT_NE(diags[0].message.find("prof/prof.hpp"), std::string::npos);
  EXPECT_NE(diags[1].message.find("predicted_ipc"), std::string::npos);
  EXPECT_NE(diags[1].message.find("seconds()"), std::string::npos);
  EXPECT_NE(diags[3].message.find("imbalance_ratio"), std::string::npos);
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.severity, Severity::kError);
    EXPECT_EQ(d.file, "tests/lint/fixtures/prof_quarantine_violation.cpp");
  }
}

TEST(LintFixtures, ProfQuarantineCompliantFieldsAndAllowlistAreClean) {
  const auto diags = lint_fixture("prof_quarantine_clean.cpp");
  EXPECT_TRUE(diags.empty()) << tbp_lint::format_diagnostic(
      diags.front(), OutputFormat::kText);
}

TEST(LintFixtures, ProfQuarantineJustifiedAllowsSilenceBothForms) {
  const auto diags = lint_fixture("prof_quarantine_suppressed.cpp");
  EXPECT_TRUE(diags.empty()) << tbp_lint::format_diagnostic(
      diags.front(), OutputFormat::kText);
}

TEST(LintFixtures, ProfIsolationSkipsFilesInsideSrcProf) {
  const auto diags = lint_fixture_as("src/prof/prof_quarantine_clean.cpp",
                                     "prof_quarantine_clean.cpp");
  EXPECT_TRUE(diags.empty()) << tbp_lint::format_diagnostic(
      diags.front(), OutputFormat::kText);
}

// --- lexer regressions ----------------------------------------------------

TEST(LintFixtures, DigitSeparatorsDoNotDesyncTheLexer) {
  const auto diags = lint_fixture("lexer_digit_separator.cpp");
  const std::vector<std::pair<std::string, int>> expected = {
      {"determinism-rand", 10},
  };
  EXPECT_EQ(rule_lines(diags), expected)
      << "1'000'000 must lex as one number, not open a char literal";
}

TEST(LintFixtures, RawStringContentsAreDataAndNewlinesStillCount) {
  const auto diags = lint_fixture("lexer_raw_string.cpp");
  const std::vector<std::pair<std::string, int>> expected = {
      {"determinism-rand", 14},
  };
  EXPECT_EQ(rule_lines(diags), expected)
      << "rand()/getenv() inside R\"doc(...)doc\" must stay inert";
}

TEST(LintLexer, DigitSeparatorIsOneNumberToken) {
  const tbp_lint::LexedFile lexed = tbp_lint::lex("auto x = 1'000'000;");
  bool found = false;
  for (const tbp_lint::Token& tok : lexed.tokens) {
    if (tok.kind == tbp_lint::TokKind::kNumber) {
      EXPECT_EQ(tok.text, "1'000'000");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LintLexer, RawStringIsConsumedAndLinesAreCounted) {
  const tbp_lint::LexedFile lexed =
      tbp_lint::lex("auto s = R\"doc(rand() \" ) )doc\";\nint after = 1;");
  for (const tbp_lint::Token& tok : lexed.tokens) {
    EXPECT_NE(tok.text, "rand") << "raw-string interior leaked into tokens";
    if (tok.text == "after") {
      EXPECT_EQ(tok.line, 2);
    }
  }
  const tbp_lint::LexedFile multi = tbp_lint::lex("R\"(a\nb\nc)\" tail");
  ASSERT_FALSE(multi.tokens.empty());
  EXPECT_EQ(multi.tokens.back().text, "tail");
  EXPECT_EQ(multi.tokens.back().line, 3);
}

TEST(LintLexer, StringLiteralsCarryInteriorTextAsStringTokens) {
  const tbp_lint::LexedFile lexed =
      tbp_lint::lex("doc.set(\"wall_seconds\", rand_free);");
  bool found = false;
  for (const tbp_lint::Token& tok : lexed.tokens) {
    if (tok.kind == tbp_lint::TokKind::kString) {
      EXPECT_EQ(tok.text, "wall_seconds");
      found = true;
    }
  }
  EXPECT_TRUE(found) << "string literal must surface as a kString token";
}

TEST(LintLexer, UnterminatedRawStringConsumesToEndWithoutLooping) {
  const tbp_lint::LexedFile lexed =
      tbp_lint::lex("auto s = R\"doc(never closes\nrand()");
  for (const tbp_lint::Token& tok : lexed.tokens) {
    EXPECT_NE(tok.text, "rand");
  }
}

TEST(LintDriver, FixtureDirectoryScanFailsWithExitCodeOne) {
  LintOptions options;
  options.root = TBP_LINT_FIXTURE_DIR;
  options.subdirs = {"."};
  options.excludes = {};
  options.config = fixture_config();
  // Under root=fixtures the repo-relative paths lose their prefix; the
  // empty prefix makes every scanned file order-sensitive.
  options.config.order_sensitive = {""};
  const LintResult result = tbp_lint::run_lint(options);
  EXPECT_FALSE(result.io_error);
  EXPECT_GE(result.files_scanned, 7u);
  EXPECT_FALSE(result.diagnostics.empty());
  EXPECT_EQ(tbp_lint::lint_exit_code(result, /*werror=*/false), 1);
  EXPECT_EQ(tbp_lint::lint_exit_code(result, /*werror=*/true), 1);
}

TEST(LintDriver, MissingRootYieldsExitCodeTwo) {
  LintOptions options;
  options.root = fixture_path("does-not-exist");
  const LintResult result = tbp_lint::run_lint(options);
  EXPECT_TRUE(result.io_error);
  EXPECT_EQ(tbp_lint::lint_exit_code(result, /*werror=*/false), 2);
}

TEST(LintDriver, CleanResultYieldsExitCodeZero) {
  LintResult clean;
  EXPECT_EQ(tbp_lint::lint_exit_code(clean, /*werror=*/false), 0);
  EXPECT_EQ(tbp_lint::lint_exit_code(clean, /*werror=*/true), 0);
  LintResult warning_only;
  warning_only.diagnostics.push_back(Diagnostic{
      "a.cpp", 1, "naked-new", Severity::kWarning, "m"});
  EXPECT_EQ(tbp_lint::lint_exit_code(warning_only, /*werror=*/false), 0);
  EXPECT_EQ(tbp_lint::lint_exit_code(warning_only, /*werror=*/true), 1);
}

TEST(LintOutput, TextAndGithubFormats) {
  const Diagnostic diag{"src/a.cpp", 42, "determinism-rand",
                        Severity::kError, "no rand"};
  EXPECT_EQ(tbp_lint::format_diagnostic(diag, OutputFormat::kText),
            "src/a.cpp:42: error: [determinism-rand] no rand");
  EXPECT_EQ(tbp_lint::format_diagnostic(diag, OutputFormat::kGithub),
            "::error file=src/a.cpp,line=42,title=tbp-lint "
            "determinism-rand::[determinism-rand] no rand");
}

TEST(LintOutput, RuleRegistryHasUniqueIdsCoveringEmittedRules) {
  std::set<std::string> ids;
  for (const tbp_lint::RuleInfo& info : tbp_lint::rule_registry()) {
    EXPECT_TRUE(ids.insert(info.id).second) << "duplicate rule " << info.id;
  }
  for (const char* emitted :
       {"determinism-rand", "determinism-clock", "determinism-time",
        "determinism-getenv", "unordered-iter", "nodiscard-status",
        "discarded-status", "pragma-once", "naked-new", "lint-suppression",
        "shard-safety", "guarded-by", "layering", "prof-isolation",
        "prof-quarantine"}) {
    EXPECT_EQ(ids.count(emitted), 1u) << emitted;
  }
}

// The SARIF document must parse as strict JSON and carry the fields the
// 2.1.0 schema marks required on the path we emit: version, runs, tool
// driver with the rule registry, and per-result rule/level/location.
TEST(LintOutput, SarifValidatesAgainstMinimalSchemaShape) {
  LintResult result;
  result.diagnostics.push_back(Diagnostic{
      "src/a.cpp", 42, "determinism-rand", Severity::kError, "no rand"});
  result.diagnostics.push_back(Diagnostic{
      "src/b.hpp", 7, "naked-new", Severity::kWarning, "prefer make_unique"});
  const std::string doc = tbp_lint::render_sarif(result);

  const auto parsed = tbp::obs::json_parse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const tbp::obs::JsonValue& root = parsed.value();

  ASSERT_NE(root.find("$schema"), nullptr);
  EXPECT_EQ(root.find("$schema")->as_string(),
            "https://json.schemastore.org/sarif-2.1.0.json");
  ASSERT_NE(root.find("version"), nullptr);
  EXPECT_EQ(root.find("version")->as_string(), "2.1.0");

  const tbp::obs::JsonValue* runs = root.find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_TRUE(runs->is_array());
  ASSERT_EQ(runs->items().size(), 1u);
  const tbp::obs::JsonValue& run = runs->items()[0];

  const tbp::obs::JsonValue* tool = run.find("tool");
  ASSERT_NE(tool, nullptr);
  const tbp::obs::JsonValue* driver = tool->find("driver");
  ASSERT_NE(driver, nullptr);
  ASSERT_NE(driver->find("name"), nullptr);
  EXPECT_EQ(driver->find("name")->as_string(), "tbp-lint");
  const tbp::obs::JsonValue* rules = driver->find("rules");
  ASSERT_NE(rules, nullptr);
  EXPECT_EQ(rules->items().size(), tbp_lint::rule_registry().size());
  for (const tbp::obs::JsonValue& rule : rules->items()) {
    ASSERT_NE(rule.find("id"), nullptr);
    ASSERT_NE(rule.find("shortDescription"), nullptr);
    ASSERT_NE(rule.find("shortDescription")->find("text"), nullptr);
  }

  const tbp::obs::JsonValue* results = run.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->items().size(), 2u);
  const tbp::obs::JsonValue& first = results->items()[0];
  EXPECT_EQ(first.find("ruleId")->as_string(), "determinism-rand");
  EXPECT_EQ(first.find("level")->as_string(), "error");
  EXPECT_EQ(first.find("message")->find("text")->as_string(), "no rand");
  const tbp::obs::JsonValue* loc =
      first.find("locations")->items()[0].find("physicalLocation");
  ASSERT_NE(loc, nullptr);
  EXPECT_EQ(loc->find("artifactLocation")->find("uri")->as_string(),
            "src/a.cpp");
  EXPECT_EQ(loc->find("region")->find("startLine")->as_u64(), 42u);
  EXPECT_EQ(results->items()[1].find("level")->as_string(), "warning");
}

// Cold run populates the summary store; warm run must hit for every file
// and still render byte-identical diagnostics — the incremental cache is
// only allowed to save time, never to change output.
TEST(LintCache, WarmRunSkipsReanalysisWithIdenticalDiagnostics) {
  namespace fs = std::filesystem;
  const fs::path cache_dir =
      fs::temp_directory_path() / "tbp-lint-cache-test";
  fs::remove_all(cache_dir);

  LintOptions options;
  options.root = TBP_LINT_FIXTURE_DIR;
  options.subdirs = {"."};
  options.excludes = {};
  options.cache_dir = cache_dir.string();
  options.config = fixture_config();
  options.config.order_sensitive = {""};

  const LintResult cold = tbp_lint::run_lint(options);
  ASSERT_FALSE(cold.io_error) << cold.io_message;
  ASSERT_TRUE(cold.cache_enabled);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, cold.files_scanned);

  const LintResult warm = tbp_lint::run_lint(options);
  ASSERT_FALSE(warm.io_error) << warm.io_message;
  ASSERT_TRUE(warm.cache_enabled);
  EXPECT_GT(warm.files_scanned, 0u);
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_EQ(warm.cache_hits, warm.files_scanned);

  const auto render = [](const LintResult& r) {
    std::ostringstream out;
    for (const Diagnostic& d : r.diagnostics) {
      out << tbp_lint::format_diagnostic(d, OutputFormat::kText) << '\n';
    }
    return out.str();
  };
  EXPECT_FALSE(render(cold).empty());
  EXPECT_EQ(render(cold), render(warm));
  fs::remove_all(cache_dir);
}

// The acceptance gate: the real tree has zero unsuppressed findings under
// the repo policy.  A regression anywhere in src/tools/bench/tests turns
// this test (and the tbp_lint_tree ctest entry) red.
TEST(LintRepo, WholeTreeIsClean) {
  LintOptions options;
  options.root = TBP_LINT_SOURCE_DIR;
  const LintResult result = tbp_lint::run_lint(options);
  ASSERT_FALSE(result.io_error) << result.io_message;
  EXPECT_GT(result.files_scanned, 100u);
  for (const Diagnostic& d : result.diagnostics) {
    ADD_FAILURE() << tbp_lint::format_diagnostic(d, OutputFormat::kText);
  }
  EXPECT_EQ(tbp_lint::lint_exit_code(result, /*werror=*/true), 0);
}

}  // namespace
