// Lint fixture: one deliberate violation per determinism rule, with the
// rule id pinned to an exact line in tests/lint/lint_test.cpp.  Never
// compiled, never scanned by the repo-wide pass (tests/lint/fixtures is
// excluded there).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int seed_from_rand() {
  return std::rand();  // line 11: determinism-rand
}

unsigned seed_from_entropy() {
  std::random_device entropy;  // line 15: determinism-rand
  return entropy();
}

long long wall_clock_cycles() {
  const auto now = std::chrono::steady_clock::now();  // line 20: determinism-clock
  return now.time_since_epoch().count();
}

long stamp() {
  return std::time(nullptr);  // line 25: determinism-time
}

const char* cache_dir_from_env() {
  return std::getenv("TBP_CACHE_DIR");  // line 29: determinism-getenv
}
