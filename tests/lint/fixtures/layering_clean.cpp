// Fixture: linted as src/store/... — a higher rank including a strictly
// lower one is the legal direction.
#include "support/status.hpp"

int fixture_layering_clean() { return 0; }
