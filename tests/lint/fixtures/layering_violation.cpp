// Fixture: linted as src/support/... — support (rank 0) must not include
// store (rank 5); the in-module include stays legal.
#include "store/store.hpp"
#include "support/status.hpp"

int fixture_layering() { return 0; }
