// Fixture: raw-string contents are data — banned identifiers inside must
// not fire, newlines inside still count, and the real violation after the
// literal fires at its exact line.
#include <string>

const char* fixture_doc() {
  static const std::string text = R"doc(
    rand() and getenv("HOME") here are documentation, not code;
    an unmatched " quote and a stray ) are fine too.
  )doc";
  return text.c_str();
}

int fixture_bad() { return rand(); }
