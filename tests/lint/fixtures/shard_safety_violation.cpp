// Fixture: worker-phase code reaching shard(shared) state and a
// commit-phase API, plus a route shim that never touches the plumbing.
#include <cstdint>

class Engine {
 public:
  void worker_step(std::uint64_t cycle);
  void commit_tick(std::uint64_t cycle);  // tbp-lint: shard(commit)
  void bad_route(std::uint64_t cycle);

 private:
  void helper(std::uint64_t cycle);
  std::uint64_t shared_counter_ = 0;  // tbp-lint: shard(shared)
  bool shard_mode_ = false;
};

// tbp-lint: shard(worker)
void Engine::worker_step(std::uint64_t cycle) { helper(cycle); }

void Engine::helper(std::uint64_t cycle) {
  shared_counter_ += cycle;
  commit_tick(cycle);
}

// tbp-lint: shard(route)
void Engine::bad_route(std::uint64_t cycle) { helper(cycle); }
