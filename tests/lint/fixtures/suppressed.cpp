// Lint fixture: each violation below carries a justified suppression, so
// the whole file must lint clean (and the driver must count the
// suppressions as honored).
#include <cstdlib>

int sanctioned_rand() {
  // tbp-lint: allow(determinism-rand) -- fixture: exercises the own-line suppression form
  return std::rand();
}

int sanctioned_rand_inline() {
  return std::rand();  // tbp-lint: allow(determinism-rand) -- fixture: exercises the same-line suppression form
}
