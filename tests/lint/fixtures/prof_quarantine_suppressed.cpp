// Suppression forms for the prof rule family: a justified allow on the
// include directive, plus same-line and own-line allows on quarantine
// sinks, must all silence the findings.
// tbp-lint: allow(prof-isolation) -- fixture exercising the include allow
#include "prof/prof.hpp"

struct Timer {
  double seconds() const { return 0.0; }
};
struct Value {
  void set(const char* key, double v);
};

void emit(Value& doc, const Timer& timer) {
  doc.set("calibration", timer.seconds());  // tbp-lint: allow(prof-quarantine) -- calibration constant, never gated across runs
  // tbp-lint: allow(prof-quarantine) -- debug-only field, stripped before sealing
  doc.set("debug_wall", timer.seconds());
}
