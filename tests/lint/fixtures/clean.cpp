// Lint fixture: idiomatic code that must produce zero findings even with
// every fixture-directory rule scope enabled.
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace tbp {
class Status {};
}  // namespace tbp

[[nodiscard]] tbp::Status persist(const std::string& path);

[[nodiscard]] inline std::uint64_t checksum(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

inline void export_sorted(const std::map<std::string, std::uint64_t>& rows,
                          std::string* out) {
  for (const auto& [name, value] : rows) {
    *out += name + std::to_string(value) + '\n';
  }
}

[[nodiscard]] inline std::unique_ptr<std::string> owned_buffer() {
  return std::make_unique<std::string>();
}
