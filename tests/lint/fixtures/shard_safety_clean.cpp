// Fixture: a worker that stays on per-shard state and reaches the shared
// side only through an honest route shim is clean.
#include <cstdint>

class Engine {
 public:
  void worker_step(std::uint64_t cycle);

 private:
  void send(std::uint64_t line);
  std::uint64_t local_pos_ = 0;
  std::uint64_t shared_counter_ = 0;  // tbp-lint: shard(shared)
  bool shard_mode_ = false;
};

// tbp-lint: shard(worker)
void Engine::worker_step(std::uint64_t cycle) {
  local_pos_ = cycle;
  send(cycle);
}

// tbp-lint: shard(route)
void Engine::send(std::uint64_t line) {
  if (shard_mode_) {
    local_pos_ = line;
  } else {
    shared_counter_ += line;
  }
}
