// Fixture: every guarded access sits under its mutex or inside a *_locked
// helper reached from a locked scope — clean.
#include <mutex>

class Counter {
 public:
  void bump();
  long snapshot() const;

 private:
  void bump_locked();
  mutable std::mutex mutex_;
  long value_ = 0;  // TBP_GUARDED_BY(mutex_)
};

void Counter::bump() {
  std::scoped_lock lock(mutex_);
  bump_locked();
}

void Counter::bump_locked() { value_ += 1; }

long Counter::snapshot() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return value_;
}
