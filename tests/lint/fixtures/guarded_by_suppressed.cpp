// Fixture: the same unlocked access, silenced by a justified allow.
#include <mutex>

class Counter {
 public:
  void bump();
  void racy_read();

 private:
  std::mutex mutex_;
  long value_ = 0;  // TBP_GUARDED_BY(mutex_)
};

void Counter::bump() {
  std::lock_guard<std::mutex> lock(mutex_);
  value_ += 1;
}

void Counter::racy_read() {
  value_ += 2;  // tbp-lint: allow(guarded-by) -- fixture: init path, no readers yet
}
