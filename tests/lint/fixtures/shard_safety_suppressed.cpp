// Fixture: the same worker-phase reaches, each silenced by a justified
// allow (own-line form and same-line form).
#include <cstdint>

class Engine {
 public:
  void worker_step(std::uint64_t cycle);
  void commit_tick(std::uint64_t cycle);  // tbp-lint: shard(commit)

 private:
  void helper(std::uint64_t cycle);
  std::uint64_t shared_counter_ = 0;  // tbp-lint: shard(shared)
  bool shard_mode_ = false;
};

// tbp-lint: shard(worker)
void Engine::worker_step(std::uint64_t cycle) { helper(cycle); }

void Engine::helper(std::uint64_t cycle) {
  // tbp-lint: allow(shard-safety) -- fixture: epoch boundary, workers parked
  shared_counter_ += cycle;
  commit_tick(cycle);  // tbp-lint: allow(shard-safety) -- fixture: barrier-ordered
}
