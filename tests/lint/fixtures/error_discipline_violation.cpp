// Lint fixture for the error-discipline rules: a Status-returning
// declaration without [[nodiscard]] and a call statement that drops the
// returned value on the floor.
#include <string>

namespace tbp {
class Status {};
}  // namespace tbp

tbp::Status flush_rows(const std::string& dir);  // line 10: nodiscard-status

[[nodiscard]] tbp::Status close_table(const std::string& dir);  // clean

void shutdown(const std::string& dir) {
  flush_rows(dir);  // line 15: discarded-status
  (void)close_table(dir);  // clean: explicit discard
}
