// Lint fixture for unordered-iter: the test config marks the fixture
// directory order-sensitive, so the raw iterations below must be flagged
// while the sorted-intermediate loop stays clean.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

struct Exporter {
  std::unordered_map<std::string, std::uint64_t> counters;
  std::map<std::string, std::uint64_t> sorted_counters;

  std::uint64_t leak_order(std::string* out) {
    std::uint64_t sum = 0;
    for (const auto& [name, value] : counters) {  // line 15: unordered-iter
      *out += name;
      sum += value;
    }
    return sum;
  }

  void leak_order_via_iterators(std::string* out) {
    for (auto it = counters.begin(); it != counters.end(); ++it) {  // line 23: unordered-iter
      *out += it->first;
    }
  }

  void safe_via_sorted_intermediate(std::string* out) {
    for (const auto& [name, value] : counters) {  // clean: feeds sorted_counters
      sorted_counters[name] += value;
    }
    for (const auto& [name, value] : sorted_counters) {  // clean: std::map
      *out += name + std::to_string(value);
    }
  }
};
