// Lint fixture: a suppression without a justification is itself a finding
// (lint-suppression), even though the allow is still honored so the
// underlying violation is reported exactly once.
#include <cstdlib>

int unjustified() {
  return std::rand();  // tbp-lint: allow(determinism-rand)
}
