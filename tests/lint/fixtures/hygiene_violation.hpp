// Lint fixture for the hygiene rules: this header deliberately omits
// '#pragma once' (flagged at line 1) and uses naked new/delete.
#include <cstdint>

inline std::uint64_t* make_counter() {
  return new std::uint64_t(0);  // line 6: naked-new
}

inline void free_counter(std::uint64_t* counter) {
  delete counter;  // line 10: naked-new
}
