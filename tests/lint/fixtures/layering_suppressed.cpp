// Fixture: the same bad edge, silenced with a justification.
// tbp-lint: allow(layering) -- fixture: transitional edge during a migration
#include "store/store.hpp"

int fixture_layering_suppressed() { return 0; }
