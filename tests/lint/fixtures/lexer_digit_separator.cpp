// Fixture: digit separators must lex as one number token — the prime must
// not open a character literal that swallows the rest of the line.  The
// canary violation after them must still fire at its exact line.
#include <cstdint>

constexpr std::uint64_t kBudget = 1'000'000;
constexpr std::uint64_t kMask = 0xFF'FF'00'00;

int fixture_entry() {
  int bad = rand();
  return bad + static_cast<int>(kBudget % 7 + kMask % 3);
}
