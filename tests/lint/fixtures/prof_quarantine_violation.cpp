// Deliberately broken: a prof include outside the allowlist, and wall-clock
// getters flowing into result fields the manifests promise byte-identity
// for.  Exercised by tests/lint/lint_test.cpp; excluded from tree scans.
#include "prof/prof.hpp"

struct Timer {
  double seconds() const { return 0.0; }
  double busy_seconds() const { return 0.0; }
};
struct Value {
  void set(const char* key, double v);
};
double imbalance_ratio();

void emit_manifest(Value& doc, const Timer& timer) {
  doc.set("predicted_ipc", timer.seconds());
  doc.set("cycles", timer.busy_seconds());
  doc.set("skew", imbalance_ratio());
}
