// Fixture: a TBP_GUARDED_BY field accessed without its mutex, and a
// lock-assuming *_locked helper called outside any lock scope.
#include <mutex>

class Counter {
 public:
  void bump();
  void racy_read();
  void flush();

 private:
  void flush_locked();
  std::mutex mutex_;
  long value_ = 0;  // TBP_GUARDED_BY(mutex_)
};

void Counter::bump() {
  std::lock_guard<std::mutex> lock(mutex_);
  value_ += 1;
}

void Counter::racy_read() {
  value_ += 2;
}

void Counter::flush() { flush_locked(); }

void Counter::flush_locked() { value_ += 3; }
