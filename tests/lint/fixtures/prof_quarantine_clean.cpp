// Clean under the prof rules: this file is on the fixture include
// allowlist, and every wall-clock getter lands in a field whose key ends
// in _seconds/_ratio — the suffixes tbp-report classifies as wall-clock
// reporting fields.
#include "prof/prof.hpp"

struct Timer {
  double seconds() const { return 0.0; }
};
struct Value {
  void set(const char* key, double v);
};
double skew_ratio();

void emit_report(Value& doc, const Timer& timer) {
  doc.set("wall_seconds", timer.seconds());
  doc.set("max_imbalance_ratio", skew_ratio());
  doc.set("cycles", 41.0);  // pure result field: no clock value in sight
}
