#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <vector>

namespace tbp::stats {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, SubstreamsAreIndependentOfParentConsumption) {
  // A substream derived from a fresh parent equals one derived from an
  // identically seeded parent, regardless of tag arithmetic elsewhere.
  Rng parent1(7);
  Rng parent2(7);
  Rng sub1 = parent1.substream(99);
  Rng sub2 = parent2.substream(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sub1.next(), sub2.next());
}

TEST(RngTest, SubstreamsWithDifferentTagsDiffer) {
  Rng parent(7);
  Rng a = parent.substream(1);
  Rng b = parent.substream(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(RngTest, BelowStaysInBounds) {
  Rng rng(5);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.below(bound), bound);
  }
}

TEST(RngTest, BelowZeroReturnsZero) {
  Rng rng(6);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(8);
  constexpr std::uint64_t kBuckets = 10;
  std::vector<int> counts(kBuckets, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / static_cast<int>(kBuckets), kDraws / 100);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values reachable
}

TEST(RngTest, RangeSingletonAlwaysReturnsBound) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.range(42, 42), 42);
}

TEST(RngTest, RangeFullInt64SpanDoesNotDegenerate) {
  // hi - lo + 1 wraps to 0 here; the naive span arithmetic would make every
  // draw return lo.  The fuzzer feeds adversarial parameters, so the full
  // span must keep producing varied values across the whole domain.
  Rng rng(14);
  constexpr std::int64_t kLo = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kHi = std::numeric_limits<std::int64_t>::max();
  std::set<std::int64_t> seen;
  bool saw_negative = false;
  bool saw_positive = false;
  for (int i = 0; i < 256; ++i) {
    const std::int64_t v = rng.range(kLo, kHi);
    seen.insert(v);
    saw_negative = saw_negative || v < 0;
    saw_positive = saw_positive || v > 0;
  }
  EXPECT_GT(seen.size(), 250u);  // collisions in 256 draws are ~impossible
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_positive);
}

TEST(RngTest, RangeHugeSpanRespectsBounds) {
  // A span larger than INT64_MAX used to overflow the signed hi - lo
  // subtraction; check the draws stay inside the requested interval.
  Rng rng(15);
  constexpr std::int64_t kLo = std::numeric_limits<std::int64_t>::min() + 1;
  constexpr std::int64_t kHi = std::numeric_limits<std::int64_t>::max() - 1;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.range(kLo, kHi);
    ASSERT_GE(v, kLo);
    ASSERT_LE(v, kHi);
  }
}

TEST(RngTest, RangeInvertedBoundsIsAPreconditionViolation) {
#ifdef NDEBUG
  // Release builds: documented deterministic fallback, never UB.
  Rng rng(16);
  EXPECT_EQ(rng.range(5, -5), 5);
#else
  Rng rng(16);
  EXPECT_DEATH((void)rng.range(5, -5), "lo <= hi");
#endif
}

TEST(RngTest, GaussianMoments) {
  Rng rng(10);
  constexpr int kDraws = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(11);
  constexpr int kDraws = 100000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) sum += rng.gaussian(400.0, 20.0);
  EXPECT_NEAR(sum / kDraws, 400.0, 0.5);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

}  // namespace
}  // namespace tbp::stats
