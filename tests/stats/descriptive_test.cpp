#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/rng.hpp"

namespace tbp::stats {
namespace {

TEST(DescriptiveTest, MeanOfKnownValues) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(DescriptiveTest, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(DescriptiveTest, VarianceOfKnownValues) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(DescriptiveTest, VarianceOfSingletonIsZero) {
  const std::vector<double> xs = {5.0};
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(DescriptiveTest, CoefficientOfVariation) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(xs), 2.0 / 5.0);
}

TEST(DescriptiveTest, CovOfConstantIsZero) {
  const std::vector<double> xs = {3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(xs), 0.0);
}

TEST(DescriptiveTest, CovOfAllZerosIsZero) {
  const std::vector<double> xs = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(xs), 0.0);
}

TEST(DescriptiveTest, GeometricMean) {
  const std::vector<double> xs = {1.0, 100.0};
  EXPECT_NEAR(geometric_mean(xs), 10.0, 1e-9);
}

TEST(DescriptiveTest, GeometricMeanFloorsNonPositive) {
  const std::vector<double> xs = {0.0, 4.0};
  // 0 floored at 1e-6: sqrt(1e-6 * 4) = 2e-3
  EXPECT_NEAR(geometric_mean(xs), 2e-3, 1e-9);
}

TEST(DescriptiveTest, PercentileEndpointsAndMedian) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(DescriptiveTest, PercentileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 75), 7.5);
}

TEST(DescriptiveTest, NormalizeByMean) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> out = normalize_by_mean(xs);
  EXPECT_DOUBLE_EQ(out[0], 0.5);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 1.5);
}

TEST(DescriptiveTest, NormalizeByZeroMeanYieldsZeros) {
  const std::vector<double> xs = {-1.0, 1.0};
  const std::vector<double> out = normalize_by_mean(xs);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
}

// Property: OnlineStats must agree with the batch formulas on random data.
class OnlineStatsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OnlineStatsProperty, MatchesBatchComputation) {
  Rng rng(GetParam());
  std::vector<double> xs;
  OnlineStats online;
  const std::size_t n = 10 + rng.below(500);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(-100.0, 100.0);
    xs.push_back(x);
    online.add(x);
  }
  EXPECT_EQ(online.count(), xs.size());
  EXPECT_NEAR(online.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(online.variance(), variance(xs), 1e-7);
  EXPECT_DOUBLE_EQ(online.min(), min_value(xs));
  EXPECT_DOUBLE_EQ(online.max(), max_value(xs));
}

TEST_P(OnlineStatsProperty, MergeEqualsConcatenation) {
  Rng rng(GetParam() ^ 0xfeed);
  OnlineStats left;
  OnlineStats right;
  std::vector<double> all;
  const std::size_t n_left = rng.below(200);
  const std::size_t n_right = 1 + rng.below(200);
  for (std::size_t i = 0; i < n_left; ++i) {
    const double x = rng.gaussian(10.0, 3.0);
    left.add(x);
    all.push_back(x);
  }
  for (std::size_t i = 0; i < n_right; ++i) {
    const double x = rng.gaussian(-5.0, 7.0);
    right.add(x);
    all.push_back(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.size());
  EXPECT_NEAR(left.mean(), mean(all), 1e-9);
  EXPECT_NEAR(left.variance(), variance(all), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineStatsProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace tbp::stats
