#include "stats/matrix.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tbp::stats {
namespace {

TEST(MatrixTest, LeftMultiplyIdentity) {
  Matrix eye(3, 3);
  for (std::size_t i = 0; i < 3; ++i) eye.at(i, i) = 1.0;
  const std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_EQ(eye.left_multiply(v), v);
}

TEST(MatrixTest, LeftMultiplyKnownValues) {
  Matrix m(2, 2);
  m.at(0, 0) = 0.5;
  m.at(0, 1) = 0.5;
  m.at(1, 0) = 0.25;
  m.at(1, 1) = 0.75;
  const std::vector<double> v = {0.4, 0.6};
  const std::vector<double> out = m.left_multiply(v);
  EXPECT_NEAR(out[0], 0.4 * 0.5 + 0.6 * 0.25, 1e-15);
  EXPECT_NEAR(out[1], 0.4 * 0.5 + 0.6 * 0.75, 1e-15);
}

TEST(MatrixTest, MultiplyMatchesRepeatedLeftMultiply) {
  Matrix m(3, 3);
  double v = 0.1;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      m.at(i, j) = v;
      v += 0.07;
    }
  }
  const Matrix m2 = m.multiply(m);
  const std::vector<double> x = {1.0, -1.0, 2.0};
  const std::vector<double> a = m2.left_multiply(x);
  const std::vector<double> b = m.left_multiply(m.left_multiply(x));
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(MatrixTest, RowSumError) {
  Matrix m(2, 2);
  m.at(0, 0) = 0.5;
  m.at(0, 1) = 0.5;
  m.at(1, 0) = 0.3;
  m.at(1, 1) = 0.6;  // sums to 0.9
  EXPECT_NEAR(m.max_row_sum_error(), 0.1, 1e-15);
}

TEST(MatrixTest, L1Distance) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {0.5, 3.5};
  EXPECT_DOUBLE_EQ(l1_distance(a, b), 2.0);
}

}  // namespace
}  // namespace tbp::stats
