#include "stats/error.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tbp::stats {
namespace {

TEST(ErrorTest, RelativeErrorBasics) {
  EXPECT_DOUBLE_EQ(relative_error(11.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(9.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(10.0, 10.0), 0.0);
}

TEST(ErrorTest, RelativeErrorNegativeReference) {
  EXPECT_DOUBLE_EQ(relative_error(-9.0, -10.0), 0.1);
}

TEST(ErrorTest, ZeroReferenceZeroPrediction) {
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
}

TEST(ErrorTest, ZeroReferenceNonzeroPredictionIsInfinite) {
  EXPECT_TRUE(std::isinf(relative_error(1.0, 0.0)));
}

TEST(ErrorTest, PercentScaling) {
  EXPECT_DOUBLE_EQ(relative_error_pct(10.795, 10.0), 7.95);
}

TEST(ErrorTest, GeomeanOfEqualErrors) {
  const std::vector<double> errors = {2.0, 2.0, 2.0};
  EXPECT_NEAR(geomean_error_pct(errors), 2.0, 1e-12);
}

TEST(ErrorTest, GeomeanFloorsZeros) {
  // One perfect benchmark must not zero the aggregate.
  const std::vector<double> errors = {0.0, 4.0};
  EXPECT_GT(geomean_error_pct(errors), 0.0);
  EXPECT_NEAR(geomean_error_pct(errors), std::sqrt(0.1 * 4.0), 1e-12);
}

}  // namespace
}  // namespace tbp::stats
