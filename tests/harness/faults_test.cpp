// Corruption-injection suite: every artifact loader must turn arbitrary
// truncations, bit flips and splices into a structured error — never a
// crash, a hang, or a silently wrong value.  The corruptions are generated
// deterministically (harness/faults.hpp), so any failing variant can be
// replayed by its name.
#include "harness/faults.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/region_io.hpp"
#include "harness/cache.hpp"
#include "profile/profile_io.hpp"
#include "support/artifact.hpp"
#include "support/atomic_file.hpp"
#include "support/checksum.hpp"

namespace tbp::harness {
namespace {

// ---- primitives ----

TEST(FaultsTest, TruncateAt) {
  EXPECT_EQ(truncate_at("abcdef", 0), "");
  EXPECT_EQ(truncate_at("abcdef", 3), "abc");
  EXPECT_EQ(truncate_at("abcdef", 99), "abcdef");
}

TEST(FaultsTest, FlipBit) {
  EXPECT_EQ(flip_bit("a", 0), "`");  // 'a' ^ 1
  EXPECT_EQ(flip_bit(std::string("ab"), 8), std::string("ac"));
  EXPECT_EQ(flip_bit("", 5), "");
  // Flipping the same bit twice restores the original.
  EXPECT_EQ(flip_bit(flip_bit("payload", 13), 13), "payload");
}

TEST(FaultsTest, Splice) {
  EXPECT_EQ(splice("aaaa", "bbbb", 2), "aabb");
  EXPECT_EQ(splice("aaaa", "bb", 3), "aaa");  // donor shorter than offset
  EXPECT_EQ(splice("aa", "bbbb", 2), "aabb");
}

TEST(FaultsTest, SuiteIsDeterministic) {
  const std::string payload = "tbpoint-profile-v2\nsome body\ncrc32 00000000\n";
  const auto a = corruption_suite(payload, "donor-text", 99);
  const auto b = corruption_suite(payload, "donor-text", 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].payload, b[i].payload);
  }
  // A different seed moves the random corruption sites.
  const auto c = corruption_suite(payload, "donor-text", 100);
  ASSERT_EQ(a.size(), c.size());
  bool any_differ = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_differ = any_differ || a[i].name != c[i].name;
  }
  EXPECT_TRUE(any_differ);
}

std::string read_whole_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---- loaders under injected corruption ----

/// Every corrupted variant must fail to load with a structured error.  A
/// splice inside the shared magic prefix can reassemble the complete donor
/// file, and a splice at the very end can reproduce the pristine one — both
/// are valid artifacts, not corruption, so those variants are skipped.
template <typename LoadFn>
void expect_all_variants_rejected(const std::string& pristine,
                                  const std::string& donor, LoadFn load) {
  const auto suite = corruption_suite(pristine, donor);
  ASSERT_FALSE(suite.empty());
  for (const Corruption& corruption : suite) {
    if (corruption.payload == pristine || corruption.payload == donor) continue;
    const Status status = load(corruption.payload);
    EXPECT_FALSE(status.ok()) << "loader accepted corruption " << corruption.name;
    EXPECT_NE(status.code(), StatusCode::kNotFound)
        << corruption.name << " misreported as a miss";
  }
}

std::string sample_profile_text() {
  profile::ApplicationProfile app;
  profile::LaunchProfile launch;
  launch.kernel_name = "kernel_a";
  launch.blocks = {{.thread_insts = 320, .warp_insts = 10, .mem_requests = 4},
                   {.thread_insts = 640, .warp_insts = 20, .mem_requests = 8}};
  launch.bbv = {5, 0, 3, 22};
  app.launches.push_back(std::move(launch));
  std::ostringstream out;
  save_profile(app, out);
  return out.str();
}

std::string donor_profile_text() {
  profile::ApplicationProfile app;
  profile::LaunchProfile launch;
  launch.kernel_name = "donor_kernel";
  launch.blocks = {{.thread_insts = 32, .warp_insts = 1, .mem_requests = 0}};
  launch.bbv = {9};
  app.launches.push_back(std::move(launch));
  std::ostringstream out;
  save_profile(app, out);
  return out.str();
}

TEST(FaultsTest, ProfileLoaderRejectsEveryCorruption) {
  expect_all_variants_rejected(
      sample_profile_text(), donor_profile_text(), [](const std::string& text) {
        std::istringstream in(text);
        return profile::load_profile(in).status();
      });
}

std::string sample_regions_text() {
  core::RegionTableSet set;
  set.system_occupancy = 84;
  set.tables.emplace_back(
      100, std::vector<core::HomogeneousRegion>{
               {.region_id = 0, .start_block = 0, .end_block = 39, .n_epochs = 5},
               {.region_id = 1, .start_block = 60, .end_block = 99, .n_epochs = 5},
           });
  std::ostringstream out;
  core::save_region_tables(set, out);
  return out.str();
}

std::string donor_regions_text() {
  core::RegionTableSet set;
  set.system_occupancy = 42;
  set.tables.emplace_back(
      7, std::vector<core::HomogeneousRegion>{
             {.region_id = 0, .start_block = 1, .end_block = 3, .n_epochs = 2},
         });
  std::ostringstream out;
  core::save_region_tables(set, out);
  return out.str();
}

TEST(FaultsTest, RegionLoaderRejectsEveryCorruption) {
  expect_all_variants_rejected(
      sample_regions_text(), donor_regions_text(), [](const std::string& text) {
        std::istringstream in(text);
        return core::load_region_tables(in).status();
      });
}

TEST(FaultsTest, CacheRowRejectsEveryCorruption) {
  // Rows live as sealed store entries now, so the corruption targets are
  // the entry files under objects/.  The donor is a complete valid entry
  // for a *different* key; unlike the plain artifact loaders, the cache
  // must reject even that (the entry's id header pins it to its path), so
  // only the exact pristine bytes are skipped.
  const std::string dir = ::testing::TempDir() + "/tbp_faults_cache";
  std::filesystem::remove_all(dir);

  ExperimentRow row;
  row.workload = "bfs";
  row.n_launches = 14;
  row.full_ipc = 2.25;
  ASSERT_TRUE(save_cached_row(dir, "victim", row).ok());
  const std::string pristine = read_whole_file(cached_row_path(dir, "victim"));
  ExperimentRow donor_row;
  donor_row.workload = "sssp";
  donor_row.n_launches = 99;
  donor_row.full_ipc = 1.125;
  ASSERT_TRUE(save_cached_row(dir, "donor", donor_row).ok());
  const std::string donor = read_whole_file(cached_row_path(dir, "donor"));

  const auto suite = corruption_suite(pristine, donor);
  ASSERT_FALSE(suite.empty());
  for (const Corruption& corruption : suite) {
    if (corruption.payload == pristine) continue;
    // Re-arm: a rejected variant quarantines the entry (file and index
    // row), so each round starts from a freshly saved row.
    ASSERT_TRUE(save_cached_row(dir, "victim", row).ok());
    std::ofstream(cached_row_path(dir, "victim"),
                  std::ios::binary | std::ios::trunc)
        << corruption.payload;
    const Status status = load_cached_row(dir, "victim").status();
    EXPECT_FALSE(status.ok()) << "cache served corruption " << corruption.name;
    EXPECT_NE(status.code(), StatusCode::kNotFound)
        << corruption.name << " misreported as a miss";
  }
}

// ---- bounded allocation under lying size fields ----

TEST(FaultsTest, CheckedEnvelopeDefeatsSizeFieldForgery) {
  // Even with a correctly recomputed checksum, a lying size field is
  // rejected by the hard cap before any allocation happens.
  const std::string forged =
      io::seal_artifact("tbpoint-profile-v2", "99999999999999\n");
  std::istringstream in(forged);
  const auto loaded = profile::load_profile(in);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kTooLarge);
}

TEST(FaultsTest, OversizedArtifactRejectedBeforeRead) {
  // Files above the hard artifact byte cap are refused before any buffer is
  // sized to hold them.
  const std::string dir = ::testing::TempDir() + "/tbp_faults_big";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/huge.txt";
  {
    std::ofstream out(path);
    out << "tbpoint-profile-v2\n";
  }
  std::filesystem::resize_file(path, io::kMaxArtifactBytes + 1);
  const auto loaded = profile::load_profile_file(path);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kTooLarge);
}

// ---- checksum unit checks ----

TEST(FaultsTest, Crc32MatchesKnownVectors) {
  // Standard IEEE CRC-32 check values (zlib-compatible).
  EXPECT_EQ(tbp::crc32(""), 0x00000000u);
  EXPECT_EQ(tbp::crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(tbp::crc32("The quick brown fox jumps over the lazy dog"),
            0x414fa339u);
}

TEST(FaultsTest, SealUnsealRoundTrip) {
  const io::ArtifactFormat format{.magic = "tbpoint-test-v2",
                                  .legacy_magic = "tbpoint-test-v1",
                                  .family = "tbpoint-test-",
                                  .kind = "test"};
  const std::string sealed = io::seal_artifact(format.magic, "line one\n");
  const auto body = io::unseal_artifact(sealed, format);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(*body, "line one\n");

  // Any single bit flip anywhere in the sealed text is detected.
  for (std::size_t bit = 0; bit < sealed.size() * 8; ++bit) {
    const std::string mutated = flip_bit(sealed, bit);
    const auto result = io::unseal_artifact(mutated, format);
    EXPECT_FALSE(result.has_value()) << "bit " << bit << " not detected";
  }
}

}  // namespace
}  // namespace tbp::harness
