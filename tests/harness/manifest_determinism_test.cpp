// The run-manifest byte-identity contract: the --manifest document written
// after a comparison is identical to the byte for every --jobs value,
// because the body holds only deterministic computation results — no wall
// clocks, no jobs count, no completion-order-dependent iteration.  Runs
// under the `parallel` ctest label so the TSan tree covers the shard
// registry traffic feeding the manifest's metrics snapshot.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "harness/experiment.hpp"
#include "harness/manifest.hpp"
#include "obs/report.hpp"
#include "sim/config.hpp"
#include "support/atomic_file.hpp"
#include "support/parallel.hpp"
#include "workloads/workload.hpp"

namespace tbp::harness {
namespace {

sim::GpuConfig small_config() {
  sim::GpuConfig config = sim::fermi_config();
  config.n_sms = 4;
  return config;
}

workloads::Workload small_workload() {
  workloads::WorkloadScale scale;
  scale.divisor = 32;
  return workloads::make_workload("stream", scale);
}

/// The reproducibility slice a bench would put in the manifest's "config"
/// member — notably without the jobs value used to compute the rows.
obs::JsonValue test_config_value() {
  obs::JsonValue out = obs::JsonValue::object();
  out.set("scale_divisor", std::uint64_t{32});
  out.set("seed", std::uint64_t{0x7b90147});
  out.set("workload", std::string("stream"));
  return out;
}

/// Runs the four-way comparison at `jobs` and writes its manifest; returns
/// the file's bytes.
std::string manifest_bytes_at_jobs(std::size_t jobs, const std::string& path) {
  par::set_global_jobs(8);
  obs::Observation session(/*metrics_on=*/true, /*trace_on=*/false);
  ComparisonOptions options;
  options.target_units = 60;
  options.jobs = jobs;
  options.observe = &session;
  const ExperimentRow row =
      run_comparison(small_workload(), small_config(), options);
  const obs::JsonValue body =
      manifest_body("bench", "collect_rows", test_config_value(), {&row, 1},
                    session.merged_metrics());
  EXPECT_TRUE(write_manifest(body, path).ok());
  const Result<std::string> bytes =
      io::read_file_limited(std::filesystem::path(path));
  EXPECT_TRUE(bytes.ok()) << bytes.status().to_string();
  return bytes.ok() ? *bytes : std::string();
}

TEST(ManifestDeterminismTest, BytesIdenticalAcrossJobs) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  const std::string dir = ::testing::TempDir();
  const std::string serial =
      manifest_bytes_at_jobs(1, dir + "/manifest_jobs1.json");
  const std::string parallel =
      manifest_bytes_at_jobs(4, dir + "/manifest_jobs4.json");
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);

  // The contract holds *because* nothing jobs- or clock-dependent reaches
  // the body; pin that directly so a future field addition that breaks the
  // promise fails here with a readable reason, not just a byte mismatch.
  EXPECT_EQ(serial.find("seconds"), std::string::npos)
      << "wall-clock fields belong in BENCH_PERF.json, not the manifest";
  EXPECT_EQ(serial.find("\"jobs\""), std::string::npos);

  // And the written document is a valid sealed manifest end to end.
  const Result<obs::JsonValue> body =
      obs::open_json(serial, obs::kManifestSchema);
  ASSERT_TRUE(body.ok()) << body.status().to_string();
  const obs::JsonValue* workloads = body->find("workloads");
  ASSERT_NE(workloads, nullptr);
  ASSERT_EQ(workloads->items().size(), 1u);
  const obs::JsonValue* attr = workloads->items()[0].find("attribution");
  ASSERT_NE(attr, nullptr);
  EXPECT_TRUE(attr->find("valid")->as_bool());
}

TEST(ManifestDeterminismTest, RepeatedSerialRunsAreStable) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  const std::string dir = ::testing::TempDir();
  const std::string first =
      manifest_bytes_at_jobs(1, dir + "/manifest_a.json");
  const std::string second =
      manifest_bytes_at_jobs(1, dir + "/manifest_b.json");
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace tbp::harness
