// Serial-vs-parallel property tests: the pipeline's determinism contract
// says every jobs value produces bit-identical results (only the wall-clock
// timing fields may differ).  These tests hold run_comparison, run_tbpoint
// and the CSV export to that standard, and prove the once-per-key cache
// guard collapses concurrent requests for one key into one computation.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/tbpoint.hpp"
#include "harness/cache.hpp"
#include "harness/csv.hpp"
#include "harness/experiment.hpp"
#include "profile/profiler.hpp"
#include "sim/config.hpp"
#include "support/parallel.hpp"
#include "workloads/workload.hpp"

namespace tbp::harness {
namespace {

ComparisonOptions small_options(std::size_t jobs) {
  ComparisonOptions options;
  options.target_units = 60;
  options.jobs = jobs;
  return options;
}

sim::GpuConfig small_config() {
  sim::GpuConfig config = sim::fermi_config();
  config.n_sms = 4;
  return config;
}

/// Every field that is part of the determinism contract — everything except
/// the wall-clock `*_seconds` measurements and the `from_cache` marker.
void expect_rows_bit_identical(const ExperimentRow& a, const ExperimentRow& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.irregular, b.irregular);
  EXPECT_EQ(a.n_launches, b.n_launches);
  EXPECT_EQ(a.total_blocks, b.total_blocks);
  EXPECT_EQ(a.total_warp_insts, b.total_warp_insts);
  EXPECT_EQ(a.full_ipc, b.full_ipc);  // bitwise, not NEAR
  for (const auto& [ma, mb] :
       {std::pair{&a.random, &b.random}, std::pair{&a.simpoint, &b.simpoint},
        std::pair{&a.tbpoint, &b.tbpoint},
        std::pair{&a.systematic, &b.systematic}}) {
    EXPECT_EQ(ma->ipc, mb->ipc);
    EXPECT_EQ(ma->err_pct, mb->err_pct);
    EXPECT_EQ(ma->sample_pct, mb->sample_pct);
  }
  EXPECT_EQ(a.inter_skip_share, b.inter_skip_share);
  EXPECT_EQ(a.simpoint_k, b.simpoint_k);
  EXPECT_EQ(a.tbp_clusters, b.tbp_clusters);
  EXPECT_EQ(a.unit_insts, b.unit_insts);
}

TEST(ParallelComparisonTest, SerialAndParallelRowsAreBitIdentical) {
  par::set_global_jobs(8);
  workloads::WorkloadScale scale;
  scale.divisor = 32;
  const workloads::Workload workload = workloads::make_workload("stream", scale);
  const sim::GpuConfig config = small_config();

  const ExperimentRow serial =
      run_comparison(workload, config, small_options(1));
  const ExperimentRow parallel =
      run_comparison(workload, config, small_options(8));
  // The launch-isolation bugfix in one assertion: the serial and the
  // per-launch-simulator parallel paths agree on the full-simulation IPC.
  EXPECT_EQ(serial.full_ipc, parallel.full_ipc);
  expect_rows_bit_identical(serial, parallel);
}

TEST(ParallelComparisonTest, IrregularWorkloadAgreesToo) {
  par::set_global_jobs(8);
  workloads::WorkloadScale scale;
  scale.divisor = 32;
  const workloads::Workload workload = workloads::make_workload("bfs", scale);
  const sim::GpuConfig config = small_config();
  expect_rows_bit_identical(run_comparison(workload, config, small_options(1)),
                            run_comparison(workload, config, small_options(4)));
}

TEST(ParallelTbpointTest, SerialAndParallelRunsAgree) {
  par::set_global_jobs(4);
  workloads::WorkloadScale scale;
  scale.divisor = 32;
  const workloads::Workload workload = workloads::make_workload("hotspot", scale);
  const auto sources = workload.sources();
  profile::ApplicationProfile profile;
  for (const auto* source : sources) {
    profile.launches.push_back(profile::profile_launch(*source));
  }
  const sim::GpuConfig config = small_config();

  core::TBPointOptions serial_options;
  serial_options.jobs = 1;
  core::TBPointOptions parallel_options;
  parallel_options.jobs = 4;
  const core::TBPointRun serial =
      core::run_tbpoint(sources, profile, config, serial_options);
  const core::TBPointRun parallel =
      core::run_tbpoint(sources, profile, config, parallel_options);

  EXPECT_EQ(serial.app.predicted_ipc, parallel.app.predicted_ipc);
  EXPECT_EQ(serial.app.total_warp_insts, parallel.app.total_warp_insts);
  EXPECT_EQ(serial.app.simulated_warp_insts, parallel.app.simulated_warp_insts);
  ASSERT_EQ(serial.reps.size(), parallel.reps.size());
  for (std::size_t r = 0; r < serial.reps.size(); ++r) {
    EXPECT_EQ(serial.reps[r].launch_index, parallel.reps[r].launch_index);
    EXPECT_EQ(serial.reps[r].sim.cycles, parallel.reps[r].sim.cycles);
    EXPECT_EQ(serial.reps[r].sim.sim_warp_insts,
              parallel.reps[r].sim.sim_warp_insts);
    EXPECT_EQ(serial.reps[r].prediction.predicted_ipc,
              parallel.reps[r].prediction.predicted_ipc);
  }
}

TEST(ParallelCsvTest, CsvBytesAreIdenticalAcrossJobsValues) {
  // The acceptance check in miniature: cold runs at jobs 1 and jobs 8,
  // timing fields zeroed (they are wall-clock and legitimately differ),
  // byte-compare the CSV.
  par::set_global_jobs(8);
  workloads::WorkloadScale scale;
  scale.divisor = 32;
  const sim::GpuConfig config = small_config();
  const std::vector<std::string> names = {"stream", "hotspot"};

  const auto rows_at = [&](std::size_t jobs) {
    std::vector<ExperimentRow> rows(names.size());
    par::parallel_for(names.size(), jobs, [&](std::size_t i) {
      const workloads::Workload workload =
          workloads::make_workload(names[i], scale);
      rows[i] = run_comparison(workload, config, small_options(jobs));
      rows[i].full_sim_seconds = 0.0;
      rows[i].tbp_seconds = 0.0;
    });
    return rows;
  };

  std::ostringstream serial_csv;
  std::ostringstream parallel_csv;
  write_rows_csv(rows_at(1), serial_csv);
  write_rows_csv(rows_at(8), parallel_csv);
  EXPECT_EQ(serial_csv.str(), parallel_csv.str());
}

TEST(OncePerKeyTest, ConcurrentRequestsCostOneComputation) {
  const std::string dir = ::testing::TempDir() + "/tbp_once_per_key";
  std::filesystem::remove_all(dir);
  par::set_global_jobs(4);

  workloads::WorkloadScale scale;
  scale.divisor = 32;
  const sim::GpuConfig config = small_config();
  const ComparisonOptions options = small_options(1);

  const std::size_t before = run_comparison_invocations();
  constexpr std::size_t kThreads = 4;
  std::vector<ExperimentRow> rows(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t]() {
        rows[t] = cached_comparison("stream", scale, config, options, dir);
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  // One owner computed; the other three shared its row without touching
  // run_comparison (and without re-reading the disk entry).
  EXPECT_EQ(run_comparison_invocations(), before + 1);
  for (std::size_t t = 1; t < kThreads; ++t) {
    expect_rows_bit_identical(rows[0], rows[t]);
  }

  // A later call hits the on-disk entry and is marked as cached.
  const ExperimentRow reloaded =
      cached_comparison("stream", scale, config, options, dir);
  EXPECT_EQ(run_comparison_invocations(), before + 1);
  EXPECT_TRUE(reloaded.from_cache);
  expect_rows_bit_identical(rows[0], reloaded);

  // The once-per-key guard must drain: a completed key left in the map
  // would pin every row of a sweep in memory for the process lifetime.
  EXPECT_EQ(cache_in_flight_for_test(), 0u);
}

}  // namespace
}  // namespace tbp::harness
