#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <filesystem>
#include <string>

#include "harness/cache.hpp"
#include "harness/cli.hpp"
#include "harness/csv.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "sim/config.hpp"
#include "support/parallel.hpp"
#include "workloads/workload.hpp"

namespace tbp::harness {
namespace {

// ---- run_comparison on a fast benchmark ----

TEST(ExperimentTest, ComparisonProducesCoherentRow) {
  workloads::WorkloadScale scale;
  scale.divisor = 32;
  const workloads::Workload workload = workloads::make_workload("stream", scale);
  sim::GpuConfig config = sim::fermi_config();
  config.n_sms = 4;
  ComparisonOptions options;
  options.target_units = 60;
  const ExperimentRow row = run_comparison(workload, config, options);

  EXPECT_EQ(row.workload, "stream");
  EXPECT_FALSE(row.irregular);
  EXPECT_GT(row.full_ipc, 0.0);
  EXPECT_LE(row.full_ipc, 4.0);
  EXPECT_GT(row.total_warp_insts, 0u);
  // Every method produced a prediction in the right ballpark.
  for (const MethodResult* m : {&row.random, &row.simpoint, &row.tbpoint}) {
    EXPECT_GT(m->ipc, 0.0);
    EXPECT_LT(m->err_pct, 50.0);
    EXPECT_GT(m->sample_pct, 0.0);
    EXPECT_LE(m->sample_pct, 100.0);
  }
  // stream: hundreds of homogeneous launches -> few clusters, tiny sample,
  // inter-launch dominated (the paper's Fig. 11 observation).
  EXPECT_LT(row.tbp_clusters, workload.launches.size() / 4);
  EXPECT_LT(row.tbpoint.sample_pct, row.random.sample_pct);
  EXPECT_GT(row.inter_skip_share, 0.5);
}

TEST(ExperimentTest, DeterministicRow) {
  workloads::WorkloadScale scale;
  scale.divisor = 32;
  const workloads::Workload workload = workloads::make_workload("hotspot", scale);
  sim::GpuConfig config = sim::fermi_config();
  config.n_sms = 4;
  ComparisonOptions options;
  options.target_units = 40;
  const ExperimentRow a = run_comparison(workload, config, options);
  const ExperimentRow b = run_comparison(workload, config, options);
  EXPECT_DOUBLE_EQ(a.full_ipc, b.full_ipc);
  EXPECT_DOUBLE_EQ(a.tbpoint.ipc, b.tbpoint.ipc);
  EXPECT_DOUBLE_EQ(a.random.ipc, b.random.ipc);
  EXPECT_DOUBLE_EQ(a.simpoint.ipc, b.simpoint.ipc);
}

// ---- cache ----

TEST(CacheTest, KeyChangesWithInputs) {
  const workloads::WorkloadScale scale;
  const sim::GpuConfig config = sim::fermi_config();
  const ComparisonOptions options;
  const std::string base = experiment_key("bfs", scale, config, options);

  workloads::WorkloadScale other_scale = scale;
  other_scale.divisor += 1;
  EXPECT_NE(base, experiment_key("bfs", other_scale, config, options));

  sim::GpuConfig other_config = config;
  other_config.n_sms = 7;
  EXPECT_NE(base, experiment_key("bfs", scale, other_config, options));

  ComparisonOptions other_options;
  other_options.tbpoint.intra.distance_threshold = 0.4;
  EXPECT_NE(base, experiment_key("bfs", scale, config, other_options));

  EXPECT_NE(base, experiment_key("sssp", scale, config, options));
}

TEST(CacheTest, RowRoundTrips) {
  const std::string dir = ::testing::TempDir() + "/tbp_cache_test";
  std::filesystem::remove_all(dir);

  ExperimentRow row;
  row.workload = "bfs";
  row.irregular = true;
  row.n_launches = 14;
  row.total_blocks = 10619;
  row.total_warp_insts = 123456789;
  row.full_ipc = 2.25;
  row.random = {.ipc = 2.1, .err_pct = 6.7, .sample_pct = 10.0};
  row.simpoint = {.ipc = 2.2, .err_pct = 2.2, .sample_pct = 5.5};
  row.tbpoint = {.ipc = 2.24, .err_pct = 0.4, .sample_pct = 2.6};
  row.inter_skip_share = 0.25;
  row.simpoint_k = 7;
  row.tbp_clusters = 3;
  row.unit_insts = 50000;
  row.full_sim_seconds = 12.5;
  row.tbp_seconds = 1.5;

  ASSERT_TRUE(save_cached_row(dir, "test_key", row).ok());
  const auto loaded = load_cached_row(dir, "test_key");
  ASSERT_TRUE(loaded.has_value());
  // Rows that come back from disk are marked; the marker itself is never
  // persisted (the freshly built row above has from_cache == false).
  EXPECT_FALSE(row.from_cache);
  EXPECT_TRUE(loaded->from_cache);
  EXPECT_EQ(loaded->workload, "bfs");
  EXPECT_TRUE(loaded->irregular);
  EXPECT_EQ(loaded->n_launches, 14u);
  EXPECT_DOUBLE_EQ(loaded->full_ipc, 2.25);
  EXPECT_DOUBLE_EQ(loaded->tbpoint.sample_pct, 2.6);
  EXPECT_DOUBLE_EQ(loaded->inter_skip_share, 0.25);
  EXPECT_EQ(loaded->simpoint_k, 7u);
}

TEST(CacheTest, MissingRowIsNotFound) {
  const auto loaded = load_cached_row("/nonexistent_dir", "nope");
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(CacheTest, LegacyV2RowWithoutChecksumStillLoads) {
  // Rows written before the checksum trailer (the committed tbpoint_cache
  // entries) must keep loading.
  const std::string dir = ::testing::TempDir() + "/tbp_cache_legacy";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir + "/legacy.txt");
    out << "tbpoint-row-v2\n"
           "bfs 1 14 10619 123456789 2.25 2.1 6.7 10 2.2 2.2 5.5 "
           "2.15 3.3 8 2.24 0.4 2.6 0.25 7 3 50000 12.5 1.5\n";
  }
  const auto loaded = load_cached_row(dir, "legacy");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->workload, "bfs");
  EXPECT_EQ(loaded->n_launches, 14u);
  EXPECT_DOUBLE_EQ(loaded->full_ipc, 2.25);
}

TEST(CacheTest, CorruptRowIsQuarantined) {
  const std::string dir = ::testing::TempDir() + "/tbp_cache_quarantine";
  std::filesystem::remove_all(dir);

  ExperimentRow row;
  row.workload = "bfs";
  row.n_launches = 14;
  row.full_ipc = 2.25;
  ASSERT_TRUE(save_cached_row(dir, "bad_key", row).ok());
  const std::filesystem::path path = cached_row_path(dir, "bad_key");
  ASSERT_TRUE(std::filesystem::exists(path));
  {
    std::ofstream out(path, std::ios::trunc);
    out << "tbp-store-entry-v1\nnot an entry at all\n";
  }
  // First lookup: structured corruption error, and the entry is deleted.
  const auto first = load_cached_row(dir, "bad_key");
  ASSERT_FALSE(first.has_value());
  EXPECT_EQ(first.status().code(), StatusCode::kCorrupt);
  EXPECT_FALSE(std::filesystem::exists(path));
  // Second lookup: clean miss, so the caller recomputes instead of failing
  // forever on the same bad entry.
  const auto second = load_cached_row(dir, "bad_key");
  ASSERT_FALSE(second.has_value());
  EXPECT_EQ(second.status().code(), StatusCode::kNotFound);
}

TEST(CacheTest, CorruptLegacyFlatRowIsQuarantinedAtMigration) {
  // Pre-store layout: an unparseable flat row is quarantined (deleted) when
  // the directory's store first opens, so the lookup is a clean miss, never
  // a persistent failure.
  const std::string dir = ::testing::TempDir() + "/tbp_cache_legacy_bad";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/bad_key.txt";
  {
    std::ofstream out(path);
    out << "tbpoint-row-v3\nnot a row at all\n";
  }
  const auto loaded = load_cached_row(dir, "bad_key");
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(CacheTest, TornWriteRecoversByRecomputation) {
  // A torn (truncated) cache entry must not poison cached_comparison: it
  // quarantines the entry, recomputes, and rewrites a valid row.
  const std::string dir = ::testing::TempDir() + "/tbp_cache_torn";
  std::filesystem::remove_all(dir);

  workloads::WorkloadScale scale;
  scale.divisor = 32;
  sim::GpuConfig config = sim::fermi_config();
  config.n_sms = 4;
  ComparisonOptions options;
  options.target_units = 60;
  const ExperimentRow fresh =
      cached_comparison("stream", scale, config, options, dir);

  // Tear the entry: keep the first half of the bytes only.
  const std::string key = experiment_key("stream", scale, config, options);
  const std::filesystem::path path = cached_row_path(dir, key);
  ASSERT_TRUE(std::filesystem::exists(path));
  std::string text;
  {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  {
    std::ofstream out(path, std::ios::trunc);
    out << text.substr(0, text.size() / 2);
  }

  const ExperimentRow recovered =
      cached_comparison("stream", scale, config, options, dir);
  EXPECT_DOUBLE_EQ(recovered.full_ipc, fresh.full_ipc);
  EXPECT_DOUBLE_EQ(recovered.tbpoint.ipc, fresh.tbpoint.ipc);
  // The quarantined entry was rewritten and is valid again.
  const auto reloaded = load_cached_row(dir, key);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_DOUBLE_EQ(reloaded->full_ipc, fresh.full_ipc);
}

// ---- csv export ----

TEST(CsvTest, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csv_escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(csv_escape("with\nnewline"), "\"with\nnewline\"");
  // Bare \r splits rows for CRLF-aware readers; it must be quoted too.
  EXPECT_EQ(csv_escape("with\rreturn"), "\"with\rreturn\"");
  EXPECT_EQ(csv_escape("crlf\r\nrow"), "\"crlf\r\nrow\"");
}

TEST(CsvTest, WritesHeaderAndRows) {
  ExperimentRow row;
  row.workload = "bfs";
  row.irregular = true;
  row.full_ipc = 2.5;
  row.tbpoint = {.ipc = 2.49, .err_pct = 0.4, .sample_pct = 10.0};

  std::ostringstream out;
  write_rows_csv(std::vector<ExperimentRow>{row}, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("workload,type"), std::string::npos);
  EXPECT_NE(text.find("tbpoint_err_pct"), std::string::npos);
  EXPECT_NE(text.find("from_cache"), std::string::npos);
  EXPECT_NE(text.find("bfs,I,"), std::string::npos);
  // Exactly one header + one data line.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(CsvTest, FileRoundTripIsReadable) {
  ExperimentRow row;
  row.workload = "spmv";
  const std::string path = ::testing::TempDir() + "/tbp_csv_test.csv";
  ASSERT_TRUE(write_rows_csv_file(std::vector<ExperimentRow>{row}, path));
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_NE(header.find("systematic_err_pct"), std::string::npos);
}

// ---- table printing ----

TEST(TableTest, FormatsAlignedColumns) {
  TablePrinter table({"name", "value"});
  table.add_row({"short", "1.00"});
  table.add_row({"much_longer_name", "2.00"});
  table.add_separator();
  table.add_row({"geomean", "1.41"});

  const std::string path = ::testing::TempDir() + "/tbp_table_test.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  table.print(f);
  std::fclose(f);

  std::string contents;
  {
    std::FILE* in = std::fopen(path.c_str(), "r");
    char buffer[256];
    while (std::fgets(buffer, sizeof buffer, in)) contents += buffer;
    std::fclose(in);
  }
  EXPECT_NE(contents.find("much_longer_name"), std::string::npos);
  EXPECT_NE(contents.find("geomean"), std::string::npos);
  EXPECT_NE(contents.find("----"), std::string::npos);
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt_pct(7.949, 2), "7.95%");
}

TEST(TableTest, GeomeanPct) {
  const std::vector<double> errors = {4.0, 1.0};
  EXPECT_NEAR(geomean_pct(errors), 2.0, 1e-12);
}

// ---- cli ----

TEST(CliTest, ParsesCommonFlags) {
  const char* argv[] = {"prog", "--scale", "8",       "--seed",
                        "42",   "--benchmarks", "bfs,mst", "--no-cache",
                        "--jobs", "4"};
  const CommonFlags flags =
      parse_common_flags(10, const_cast<char**>(argv));
  EXPECT_EQ(flags.scale.divisor, 8u);
  EXPECT_EQ(flags.scale.seed, 42u);
  EXPECT_EQ(flags.benchmarks, (std::vector<std::string>{"bfs", "mst"}));
  EXPECT_TRUE(flags.cache_dir.empty());
  EXPECT_EQ(flags.jobs, 4u);
}

TEST(CliTest, JobsDefaultsToHardwareConcurrency) {
  const char* argv[] = {"prog"};
  const CommonFlags flags = parse_common_flags(1, const_cast<char**>(argv));
  EXPECT_GE(flags.jobs, 1u);
  EXPECT_EQ(flags.jobs, par::default_jobs());
}

TEST(CliTest, DefaultsToAllBenchmarks) {
  const char* argv[] = {"prog"};
  const CommonFlags flags = parse_common_flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.benchmark_list().size(), 12u);
  EXPECT_EQ(flags.cache_dir, "tbpoint_cache");
}

TEST(CliTest, ValidateScaleRejectsZeroDivisor) {
  workloads::WorkloadScale scale;
  scale.divisor = 0;
  const Status st = validate_scale(scale);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);

  scale.divisor = 1;
  EXPECT_TRUE(validate_scale(scale).ok());
  scale.divisor = 64;
  EXPECT_TRUE(validate_scale(scale).ok());
}

TEST(CliTest, ScaleZeroExitsWithUsageError) {
  // parse_common_flags exits(2) on --scale 0, so drive it in a death test;
  // the message names the flag so the user knows what to fix.
  const char* argv[] = {"prog", "--scale", "0"};
  EXPECT_EXIT((void)parse_common_flags(3, const_cast<char**>(argv)),
              testing::ExitedWithCode(2), "invalid value for --scale");
}

TEST(CliTest, StrictU64Parsing) {
  ASSERT_TRUE(parse_u64("42").has_value());
  EXPECT_EQ(*parse_u64("42"), 42u);
  EXPECT_EQ(*parse_u64("0x10", 0), 16u);
  EXPECT_EQ(*parse_u64("18446744073709551615"), ~std::uint64_t{0});

  for (const char* bad : {"", "abc", "12abc", "-3", "+5", " 7", "1.5",
                          "18446744073709551616"}) {
    const auto parsed = parse_u64(bad);
    EXPECT_FALSE(parsed.has_value()) << "accepted '" << bad << "'";
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(CliTest, StrictU32Parsing) {
  EXPECT_EQ(*parse_u32("4294967295"), 4294967295u);
  EXPECT_FALSE(parse_u32("4294967296").has_value());
  EXPECT_FALSE(parse_u32("eight").has_value());
}

TEST(CliTest, StrictDoubleParsing) {
  EXPECT_DOUBLE_EQ(*parse_double("0.25"), 0.25);
  EXPECT_DOUBLE_EQ(*parse_double("-1.5e3"), -1500.0);
  for (const char* bad : {"", "abc", "0.5x", "1.2.3"}) {
    EXPECT_FALSE(parse_double(bad).has_value()) << "accepted '" << bad << "'";
  }
}

TEST(CliTest, HasFlagAndFlagValue) {
  const char* argv[] = {"prog", "--full", "--mode", "fast"};
  char** args = const_cast<char**>(argv);
  EXPECT_TRUE(has_flag(4, args, "--full"));
  EXPECT_FALSE(has_flag(4, args, "--quick"));
  EXPECT_EQ(flag_value(4, args, "--mode", "slow"), "fast");
  EXPECT_EQ(flag_value(4, args, "--other", "slow"), "slow");
}

}  // namespace
}  // namespace tbp::harness
