// Forward-progress watchdog: a malformed trace that wedges the machine must
// come back as a structured kDeadlock diagnostic (which SM, which blocks,
// scoreboard state), never a hang or an out-of-bounds read; an undersized
// cycle budget must come back as kTimeout.
#include <gtest/gtest.h>

#include <string>

#include "sim/gpu.hpp"
#include "trace/generator.hpp"
#include "trace/validate.hpp"

namespace tbp::sim {
namespace {

/// Two warps per block; warp 0 hits a barrier and then exits, warp 1's
/// stream ends without a kExit.  Warp 1 wedges when it runs out of
/// instructions, so the barrier can never release and the block can never
/// retire: the launch is genuinely deadlocked.
class DeadlockingLaunch final : public trace::LaunchTraceSource {
 public:
  DeadlockingLaunch() {
    kernel_ = trace::make_synthetic_kernel_info("deadlock");
    kernel_.threads_per_block = 64;  // two warps
  }

  [[nodiscard]] const trace::KernelInfo& kernel() const override {
    return kernel_;
  }
  [[nodiscard]] std::uint32_t n_blocks() const override { return 1; }
  [[nodiscard]] trace::BlockTrace block_trace(std::uint32_t) const override {
    const auto inst = [](trace::Op op) {
      trace::WarpInst i;
      i.op = op;
      return i;
    };
    trace::BlockTrace trace;
    trace.warps.resize(2);
    trace.warps[0] = {inst(trace::Op::kBarrier), inst(trace::Op::kExit)};
    trace.warps[1] = {inst(trace::Op::kIntAlu)};  // missing kExit
    return trace;
  }

 private:
  trace::KernelInfo kernel_;
};

GpuConfig tiny_config() {
  GpuConfig config = fermi_config();
  config.n_sms = 1;
  return config;
}

TEST(WatchdogTest, DeadlockedLaunchReturnsDiagnostic) {
  const DeadlockingLaunch launch;
  GpuSimulator simulator(tiny_config());
  RunOptions options;
  options.stall_cycle_limit = 2000;  // keep the test fast

  WatchdogDiagnostic diag;
  const auto result = simulator.run_launch_checked(launch, options, &diag);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlock);

  ASSERT_TRUE(diag.triggered);
  EXPECT_GE(diag.stalled_cycles, options.stall_cycle_limit);
  EXPECT_EQ(diag.dispatched_blocks, 1u);
  EXPECT_EQ(diag.n_blocks, 1u);
  ASSERT_EQ(diag.sms.size(), 1u);
  const SmDebugState& sm = diag.sms[0];
  EXPECT_EQ(sm.active_blocks, (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(sm.warps_wait_barrier, 1u);  // warp 0 parked at the barrier
  EXPECT_EQ(sm.warps_wedged, 1u);        // warp 1 ran off its stream

  // The rendered diagnostic names the stall and the scoreboard state.
  const std::string text = result.status().to_string();
  EXPECT_NE(text.find("no forward progress"), std::string::npos);
  EXPECT_NE(text.find("wait-barrier"), std::string::npos);
  EXPECT_NE(text.find("wedged"), std::string::npos);
}

TEST(WatchdogTest, ValidatorFlagsTheDeadlockingTraceUpFront) {
  // The same malformed trace the watchdog catches at runtime is rejected
  // statically by validate_launch (the --validate CLI path).
  const DeadlockingLaunch launch;
  const trace::ValidationReport report = trace::validate_launch(launch);
  EXPECT_FALSE(report.ok());
}

TEST(WatchdogTest, ExhaustedCycleBudgetIsTimeout) {
  trace::BlockBehavior behavior;
  behavior.loop_iterations = 64;
  behavior.alu_per_iteration = 4;
  behavior.mem_per_iteration = 1;
  const trace::SyntheticLaunch launch(
      trace::make_synthetic_kernel_info("timeout"), /*n_blocks=*/32,
      /*seed=*/11, [behavior](std::uint32_t) { return behavior; });

  GpuSimulator simulator(tiny_config());
  RunOptions options;
  options.max_cycles = 50;  // far too few to finish 32 blocks

  const auto result = simulator.run_launch_checked(launch, options);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  EXPECT_NE(result.status().message().find("max_cycles"), std::string::npos);
}

TEST(WatchdogTest, HealthyLaunchIsUnaffected) {
  trace::BlockBehavior behavior;
  behavior.loop_iterations = 4;
  behavior.alu_per_iteration = 3;
  behavior.mem_per_iteration = 1;
  const trace::SyntheticLaunch launch(
      trace::make_synthetic_kernel_info("healthy"), /*n_blocks=*/8,
      /*seed=*/11, [behavior](std::uint32_t) { return behavior; });

  GpuSimulator simulator(tiny_config());
  const auto checked = simulator.run_launch_checked(launch);
  ASSERT_TRUE(checked.has_value());
  // The checked and aborting entry points agree on a healthy launch.
  const LaunchResult plain = GpuSimulator(tiny_config()).run_launch(launch);
  EXPECT_EQ(checked->cycles, plain.cycles);
  EXPECT_EQ(checked->sim_warp_insts, plain.sim_warp_insts);
}

TEST(WatchdogTest, OversizedKernelIsInvalidArgument) {
  trace::KernelInfo kernel = trace::make_synthetic_kernel_info("huge");
  kernel.shared_mem_per_block = 1u << 30;  // no SM can host this block
  trace::BlockBehavior behavior;
  behavior.loop_iterations = 1;
  behavior.alu_per_iteration = 1;
  const trace::SyntheticLaunch launch(kernel, /*n_blocks=*/1, /*seed=*/1,
                                      [behavior](std::uint32_t) { return behavior; });
  GpuSimulator simulator(tiny_config());
  const auto result = simulator.run_launch_checked(launch);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tbp::sim
