#include "sim/gpu.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "sim/controller.hpp"
#include "trace/generator.hpp"

namespace tbp::sim {
namespace {

trace::BlockBehavior default_behavior() {
  trace::BlockBehavior b;
  b.loop_iterations = 4;
  b.alu_per_iteration = 3;
  b.mem_per_iteration = 1;
  b.stores_per_iteration = 1;
  b.lines_per_access = 2;
  b.pattern = trace::AddressPattern::kStreaming;
  return b;
}

trace::SyntheticLaunch make_launch(std::uint32_t n_blocks,
                                   trace::BlockBehavior behavior = default_behavior(),
                                   std::uint64_t seed = 11) {
  return trace::SyntheticLaunch(trace::make_synthetic_kernel_info("gpu_test"),
                                n_blocks, seed,
                                [behavior](std::uint32_t) { return behavior; });
}

GpuConfig small_config() {
  GpuConfig config = fermi_config();
  config.n_sms = 2;
  return config;
}

TEST(GpuTest, SimulatesEveryInstructionOfEveryBlock) {
  const trace::SyntheticLaunch launch = make_launch(10);
  std::uint64_t expected = 0;
  for (std::uint32_t b = 0; b < launch.n_blocks(); ++b) {
    expected += launch.block_trace(b).warp_inst_count();
  }
  GpuSimulator simulator(small_config());
  const LaunchResult result = simulator.run_launch(launch);
  EXPECT_EQ(result.sim_warp_insts, expected);
  EXPECT_TRUE(result.skipped_blocks.empty());
  EXPECT_GT(result.cycles, 0u);
}

TEST(GpuTest, PerSmStatsSumToTotal) {
  const trace::SyntheticLaunch launch = make_launch(16);
  GpuSimulator simulator(small_config());
  const LaunchResult result = simulator.run_launch(launch);
  std::uint64_t warp_sum = 0;
  std::uint64_t thread_sum = 0;
  for (const SmLaunchStats& sm : result.per_sm) {
    warp_sum += sm.warp_insts;
    thread_sum += sm.thread_insts;
  }
  EXPECT_EQ(warp_sum, result.sim_warp_insts);
  EXPECT_EQ(thread_sum, result.sim_thread_insts);
}

TEST(GpuTest, MachineIpcWithinPhysicalBounds) {
  const trace::SyntheticLaunch launch = make_launch(12);
  const GpuConfig config = small_config();
  GpuSimulator simulator(config);
  const LaunchResult result = simulator.run_launch(launch);
  EXPECT_GT(result.machine_ipc(), 0.0);
  EXPECT_LE(result.machine_ipc(), static_cast<double>(config.n_sms));
}

TEST(GpuTest, DeterministicAcrossRuns) {
  const trace::SyntheticLaunch launch = make_launch(8);
  GpuSimulator simulator(small_config());
  const LaunchResult a = simulator.run_launch(launch);
  const LaunchResult b = simulator.run_launch(launch);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.sim_warp_insts, b.sim_warp_insts);
  ASSERT_EQ(a.tb_units.size(), b.tb_units.size());
  for (std::size_t i = 0; i < a.tb_units.size(); ++i) {
    EXPECT_EQ(a.tb_units[i].end_cycle, b.tb_units[i].end_cycle);
  }
}

TEST(GpuTest, OccupancyFieldsMatchCalculator) {
  const trace::SyntheticLaunch launch = make_launch(4);
  const GpuConfig config = small_config();
  GpuSimulator simulator(config);
  const LaunchResult result = simulator.run_launch(launch);
  EXPECT_EQ(result.sm_occupancy, 6u);  // 1536/256
  EXPECT_EQ(result.system_occupancy, 12u);
}

TEST(GpuTest, SamplingUnitsCoverSimulation) {
  const trace::SyntheticLaunch launch = make_launch(20);
  GpuSimulator simulator(small_config());
  const LaunchResult result = simulator.run_launch(launch);
  ASSERT_FALSE(result.tb_units.empty());
  // Units tile the simulation: instruction counts sum to the total issued
  // and windows are ordered without overlap.
  std::uint64_t unit_insts = 0;
  for (std::size_t i = 0; i < result.tb_units.size(); ++i) {
    unit_insts += result.tb_units[i].warp_insts;
    EXPECT_LE(result.tb_units[i].start_cycle, result.tb_units[i].end_cycle);
    if (i > 0) {
      EXPECT_GE(result.tb_units[i].start_cycle, result.tb_units[i - 1].end_cycle);
    }
  }
  EXPECT_EQ(unit_insts, result.sim_warp_insts);
}

TEST(GpuTest, FixedUnitsPartitionInstructions) {
  const trace::SyntheticLaunch launch = make_launch(20);
  GpuConfig config = small_config();
  config.fixed_unit_insts = 500;
  GpuSimulator simulator(config);
  const LaunchResult result = simulator.run_launch(launch);
  ASSERT_GT(result.fixed_units.size(), 1u);
  std::uint64_t total = 0;
  for (const FixedUnit& unit : result.fixed_units) {
    total += unit.warp_insts;
    std::uint64_t bbv_sum = 0;
    for (std::uint32_t v : unit.bbv) bbv_sum += v;
    EXPECT_EQ(bbv_sum, unit.warp_insts);  // BBV accounts for every inst
  }
  EXPECT_EQ(total, result.sim_warp_insts);
  // All units except the last are exactly the configured size (the meter
  // closes on the boundary; one issue per SM per cycle can overshoot by at
  // most n_sms - 1).
  for (std::size_t i = 0; i + 1 < result.fixed_units.size(); ++i) {
    EXPECT_GE(result.fixed_units[i].warp_insts, 500u);
    EXPECT_LT(result.fixed_units[i].warp_insts, 500u + config.n_sms);
  }
}

/// Controller that skips a fixed set of blocks.
class SkipSet final : public SimController {
 public:
  explicit SkipSet(std::set<std::uint32_t> skip) : skip_(std::move(skip)) {}

  BlockAction on_block_dispatch(std::uint32_t block_id, std::uint64_t) override {
    ++dispatch_calls_;
    return skip_.contains(block_id) ? BlockAction::kSkip : BlockAction::kSimulate;
  }

  void on_block_retire(std::uint32_t block_id, std::uint64_t, bool skipped) override {
    retired_.emplace_back(block_id, skipped);
  }

  std::set<std::uint32_t> skip_;
  std::vector<std::pair<std::uint32_t, bool>> retired_;
  int dispatch_calls_ = 0;
};

TEST(GpuTest, ControllerSkipsRequestedBlocks) {
  const trace::SyntheticLaunch launch = make_launch(10);
  SkipSet controller({2, 3, 7});
  GpuSimulator simulator(small_config());
  RunOptions options;
  options.controller = &controller;
  const LaunchResult result = simulator.run_launch(launch, options);

  EXPECT_EQ(result.skipped_blocks, (std::vector<std::uint32_t>{2, 3, 7}));
  // Skipped instructions are not simulated.
  std::uint64_t expected = 0;
  for (std::uint32_t b = 0; b < 10; ++b) {
    if (!controller.skip_.contains(b)) {
      expected += launch.block_trace(b).warp_inst_count();
    }
  }
  EXPECT_EQ(result.sim_warp_insts, expected);
  // The controller was consulted exactly once per block.
  EXPECT_EQ(controller.dispatch_calls_, 10);
  // Every block retired exactly once, with the right skip flag.
  EXPECT_EQ(controller.retired_.size(), 10u);
  for (const auto& [block, skipped] : controller.retired_) {
    EXPECT_EQ(skipped, controller.skip_.contains(block));
  }
}

TEST(GpuTest, SkippingEverythingCostsNoCycles) {
  const trace::SyntheticLaunch launch = make_launch(50);
  SkipSet controller([] {
    std::set<std::uint32_t> all;
    for (std::uint32_t b = 0; b < 50; ++b) all.insert(b);
    return all;
  }());
  GpuSimulator simulator(small_config());
  RunOptions options;
  options.controller = &controller;
  const LaunchResult result = simulator.run_launch(launch, options);
  EXPECT_EQ(result.sim_warp_insts, 0u);
  EXPECT_EQ(result.skipped_blocks.size(), 50u);
  EXPECT_LE(result.cycles, 1u);
}

TEST(GpuTest, SkippingHalfIsFasterThanFull) {
  const trace::SyntheticLaunch launch = make_launch(40);
  GpuSimulator simulator(small_config());
  const LaunchResult full = simulator.run_launch(launch);

  std::set<std::uint32_t> back_half;
  for (std::uint32_t b = 20; b < 40; ++b) back_half.insert(b);
  SkipSet controller(back_half);
  RunOptions options;
  options.controller = &controller;
  const LaunchResult sampled = simulator.run_launch(launch, options);
  EXPECT_LT(sampled.cycles, full.cycles);
  EXPECT_LT(sampled.sim_warp_insts, full.sim_warp_insts);
}

TEST(GpuTest, DesignatedBlocksAppearInDispatchOrder) {
  // Each new designated block is dispatched after the previous one retired,
  // so unit end-block ids strictly increase (the synthetic tail unit, if
  // any, uses the max sentinel and preserves the ordering).
  const trace::SyntheticLaunch launch = make_launch(30);
  GpuSimulator simulator(small_config());
  const LaunchResult result = simulator.run_launch(launch);
  ASSERT_GE(result.tb_units.size(), 2u);
  for (std::size_t i = 1; i < result.tb_units.size(); ++i) {
    EXPECT_GT(result.tb_units[i].end_block_id, result.tb_units[i - 1].end_block_id);
  }
}

TEST(GpuTest, BarrierKernelCompletes) {
  trace::BlockBehavior behavior = default_behavior();
  behavior.barrier_per_iteration = true;
  behavior.shared_per_iteration = 2;
  const trace::SyntheticLaunch launch = make_launch(6, behavior);
  GpuSimulator simulator(small_config());
  const LaunchResult result = simulator.run_launch(launch);
  EXPECT_GT(result.sim_warp_insts, 0u);
  EXPECT_TRUE(result.skipped_blocks.empty());
}

TEST(GpuTest, MemoryBoundKernelHasLowerIpc) {
  trace::BlockBehavior compute = default_behavior();
  compute.mem_per_iteration = 0;
  compute.stores_per_iteration = 0;
  compute.alu_per_iteration = 6;

  trace::BlockBehavior memory = default_behavior();
  memory.mem_per_iteration = 4;
  memory.lines_per_access = 16;
  memory.pattern = trace::AddressPattern::kRandom;
  memory.working_set_lines = 1u << 16;
  memory.region_base_line = 1u << 20;

  GpuSimulator simulator(small_config());
  const LaunchResult c = simulator.run_launch(make_launch(12, compute));
  const LaunchResult m = simulator.run_launch(make_launch(12, memory));
  EXPECT_GT(c.machine_ipc(), m.machine_ipc());
}

TEST(GpuTest, GtoSchedulerExecutesEverythingToo) {
  const trace::SyntheticLaunch launch = make_launch(20);
  GpuConfig rr = small_config();
  GpuConfig gto = small_config();
  gto.scheduler = WarpScheduler::kGreedyThenOldest;
  const LaunchResult a = GpuSimulator(rr).run_launch(launch);
  const LaunchResult b = GpuSimulator(gto).run_launch(launch);
  // Same work, both policies complete it; schedules (and usually cycle
  // counts) differ.
  EXPECT_EQ(a.sim_warp_insts, b.sim_warp_insts);
  EXPECT_EQ(a.sim_thread_insts, b.sim_thread_insts);
  EXPECT_GT(b.machine_ipc(), 0.0);
}

TEST(GpuTest, GtoSchedulerIsDeterministic) {
  const trace::SyntheticLaunch launch = make_launch(12);
  GpuConfig gto = small_config();
  gto.scheduler = WarpScheduler::kGreedyThenOldest;
  GpuSimulator simulator(gto);
  const LaunchResult a = simulator.run_launch(launch);
  const LaunchResult b = simulator.run_launch(launch);
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(GpuTest, MoreSmsFinishFaster) {
  const trace::SyntheticLaunch launch = make_launch(24);
  GpuConfig two = small_config();
  GpuConfig four = small_config();
  four.n_sms = 4;
  const LaunchResult r2 = GpuSimulator(two).run_launch(launch);
  const LaunchResult r4 = GpuSimulator(four).run_launch(launch);
  EXPECT_LT(r4.cycles, r2.cycles);
  EXPECT_EQ(r4.sim_warp_insts, r2.sim_warp_insts);
}

}  // namespace
}  // namespace tbp::sim
