// Byte-identity of the intra-launch SM-sharded engine: for every workload
// shape, machine geometry, controller behavior and sim_jobs value, a
// sharded run must be indistinguishable from the serial engine — same
// cycle count, same per-SM stats, same sampling units in the same order,
// same memory counters, same flushed metrics.  This is the contract that
// lets every downstream consumer (manifests, caches, baselines, the
// fuzzer's oracles) treat sim_jobs as a pure wall-clock knob.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/gpu.hpp"
#include "stats/rng.hpp"
#include "trace/generator.hpp"
#include "workloads/workload.hpp"

namespace tbp::sim {
namespace {

struct Draw {
  trace::SyntheticLaunch launch;
  GpuConfig config;
};

/// Randomized launch/machine shapes, biased toward the regimes that stress
/// the epoch scheme: several SMs, memory pressure (small MSHR pools so the
/// overflow-retry path runs), occasional barriers and divergence.
Draw draw(std::uint64_t seed) {
  stats::Rng rng(seed);
  trace::BlockBehavior b;
  b.loop_iterations = 2 + static_cast<std::uint32_t>(rng.below(8));
  b.alu_per_iteration = 1 + static_cast<std::uint32_t>(rng.below(6));
  b.sfu_per_iteration = static_cast<std::uint32_t>(rng.below(3));
  b.mem_per_iteration = static_cast<std::uint32_t>(rng.below(4));
  b.stores_per_iteration = static_cast<std::uint32_t>(rng.below(3));
  b.shared_per_iteration = static_cast<std::uint32_t>(rng.below(3));
  b.branch_divergence = rng.uniform(0.0, 0.5);
  b.lines_per_access = static_cast<std::uint8_t>(1 + rng.below(8));
  b.pattern = static_cast<trace::AddressPattern>(rng.below(3));
  b.working_set_lines = 1u << (8 + rng.below(8));
  b.region_base_line = rng.below(2) ? (1u << 20) : 0;
  b.barrier_per_iteration = rng.below(4) == 0;
  b.stride_lines = static_cast<std::uint32_t>(1 + rng.below(64));

  trace::KernelInfo kernel = trace::make_synthetic_kernel_info("shard");
  kernel.threads_per_block = 128u << rng.below(3);

  const auto n_blocks = static_cast<std::uint32_t>(8 + rng.below(24));
  const std::uint32_t base_iters = b.loop_iterations;
  auto behavior = [b, base_iters, seed](std::uint32_t block_id) {
    trace::BlockBehavior out = b;
    stats::Rng block_rng = stats::Rng(seed).substream(block_id);
    out.loop_iterations =
        base_iters + static_cast<std::uint32_t>(block_rng.below(3));
    return out;
  };

  GpuConfig config = fermi_config();
  config.n_sms = static_cast<std::uint32_t>(2 + rng.below(14));
  config.n_channels = static_cast<std::uint32_t>(1 + rng.below(6));
  config.l1_mshrs = static_cast<std::uint32_t>(1 + rng.below(16));
  config.l2_mshrs = static_cast<std::uint32_t>(4 + rng.below(32));
  if (rng.below(2) == 0) {
    config.fixed_unit_insts = 500 + rng.below(4000);
  }
  return Draw{
      trace::SyntheticLaunch(kernel, n_blocks, seed ^ 0x5eed, behavior),
      config,
  };
}

/// Skips a deterministic subset of blocks and records every controller
/// callback, so the comparison covers callback order, not just end state.
class RecordingController : public SimController {
 public:
  explicit RecordingController(std::uint32_t skip_modulus)
      : skip_modulus_(skip_modulus) {}

  BlockAction on_block_dispatch(std::uint32_t block_id,
                                std::uint64_t cycle) override {
    log_.push_back({0, block_id, cycle});
    if (skip_modulus_ != 0 && block_id % skip_modulus_ == 0) {
      return BlockAction::kSkip;
    }
    return BlockAction::kSimulate;
  }
  void on_block_retire(std::uint32_t block_id, std::uint64_t cycle,
                       bool was_skipped) override {
    log_.push_back({was_skipped ? 2u : 1u, block_id, cycle});
  }
  void on_sampling_unit(const SamplingUnit& unit) override {
    log_.push_back({3, unit.end_block_id, unit.end_cycle});
    log_.push_back({4, static_cast<std::uint32_t>(unit.warp_insts),
                    unit.start_cycle});
  }

  struct Event {
    std::uint32_t kind = 0;
    std::uint32_t id = 0;
    std::uint64_t cycle = 0;
    bool operator==(const Event&) const = default;
  };
  [[nodiscard]] const std::vector<Event>& log() const noexcept { return log_; }

 private:
  std::uint32_t skip_modulus_ = 0;
  std::vector<Event> log_;
};

void expect_identical(const LaunchResult& a, const LaunchResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.sim_warp_insts, b.sim_warp_insts);
  EXPECT_EQ(a.sim_thread_insts, b.sim_thread_insts);
  EXPECT_EQ(a.sm_occupancy, b.sm_occupancy);
  EXPECT_EQ(a.system_occupancy, b.system_occupancy);
  EXPECT_EQ(a.skipped_blocks, b.skipped_blocks);

  ASSERT_EQ(a.per_sm.size(), b.per_sm.size());
  for (std::size_t s = 0; s < a.per_sm.size(); ++s) {
    EXPECT_EQ(a.per_sm[s].warp_insts, b.per_sm[s].warp_insts) << "SM " << s;
    EXPECT_EQ(a.per_sm[s].thread_insts, b.per_sm[s].thread_insts) << "SM " << s;
  }

  ASSERT_EQ(a.tb_units.size(), b.tb_units.size());
  for (std::size_t i = 0; i < a.tb_units.size(); ++i) {
    EXPECT_EQ(a.tb_units[i].start_cycle, b.tb_units[i].start_cycle) << i;
    EXPECT_EQ(a.tb_units[i].end_cycle, b.tb_units[i].end_cycle) << i;
    EXPECT_EQ(a.tb_units[i].warp_insts, b.tb_units[i].warp_insts) << i;
    EXPECT_EQ(a.tb_units[i].end_block_id, b.tb_units[i].end_block_id) << i;
  }
  ASSERT_EQ(a.fixed_units.size(), b.fixed_units.size());
  for (std::size_t i = 0; i < a.fixed_units.size(); ++i) {
    EXPECT_EQ(a.fixed_units[i].start_cycle, b.fixed_units[i].start_cycle) << i;
    EXPECT_EQ(a.fixed_units[i].end_cycle, b.fixed_units[i].end_cycle) << i;
    EXPECT_EQ(a.fixed_units[i].warp_insts, b.fixed_units[i].warp_insts) << i;
    EXPECT_EQ(a.fixed_units[i].thread_insts, b.fixed_units[i].thread_insts) << i;
    EXPECT_EQ(a.fixed_units[i].bbv, b.fixed_units[i].bbv) << i;
  }

  EXPECT_EQ(a.mem.l1.hits, b.mem.l1.hits);
  EXPECT_EQ(a.mem.l1.misses, b.mem.l1.misses);
  EXPECT_EQ(a.mem.l1.evictions, b.mem.l1.evictions);
  EXPECT_EQ(a.mem.l2.hits, b.mem.l2.hits);
  EXPECT_EQ(a.mem.l2.misses, b.mem.l2.misses);
  EXPECT_EQ(a.mem.l2.evictions, b.mem.l2.evictions);
  EXPECT_EQ(a.mem.l1_mshr_merges, b.mem.l1_mshr_merges);
  EXPECT_EQ(a.mem.l2_mshr_merges, b.mem.l2_mshr_merges);
  EXPECT_EQ(a.mem.l1_mshr_stalls, b.mem.l1_mshr_stalls);
  EXPECT_EQ(a.mem.l2_mshr_overflows, b.mem.l2_mshr_overflows);
  EXPECT_EQ(a.mem.dram.row_hits, b.mem.dram.row_hits);
  EXPECT_EQ(a.mem.dram.row_misses, b.mem.dram.row_misses);
  EXPECT_EQ(a.mem.dram.loads, b.mem.dram.loads);
  EXPECT_EQ(a.mem.dram.stores, b.mem.dram.stores);
  EXPECT_EQ(a.mem.dram.scheduling_decisions, b.mem.dram.scheduling_decisions);
}

struct ObservedRun {
  LaunchResult result;
  obs::MetricsSnapshot metrics;
  std::vector<RecordingController::Event> controller_log;
};

ObservedRun run_observed(const Draw& d, std::uint32_t sim_jobs,
                         std::uint32_t skip_modulus) {
  GpuSimulator simulator(d.config);
  RecordingController controller(skip_modulus);
  obs::MetricsShard shard;
  RunOptions options;
  options.sim_jobs = sim_jobs;
  if (skip_modulus != ~0u) options.controller = &controller;
  options.observe = LaunchObservation{.metrics = &shard};
  ObservedRun run;
  run.result = simulator.run_launch(d.launch, options);
  run.metrics.absorb(shard);
  run.controller_log = controller.log();
  return run;
}

class ShardedEngine : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardedEngine, MatchesSerialExactly) {
  const Draw d = draw(GetParam());
  const ObservedRun serial = run_observed(d, 1, ~0u);
  for (std::uint32_t jobs : {2u, 5u}) {
    const ObservedRun sharded = run_observed(d, jobs, ~0u);
    expect_identical(serial.result, sharded.result);
    EXPECT_EQ(serial.metrics.counters, sharded.metrics.counters)
        << "sim_jobs=" << jobs;
  }
}

TEST_P(ShardedEngine, MatchesSerialWithSkippingController) {
  const Draw d = draw(GetParam() ^ 0xc0ffee);
  const std::uint32_t skip_modulus = 3;
  const ObservedRun serial = run_observed(d, 1, skip_modulus);
  const ObservedRun sharded = run_observed(d, 4, skip_modulus);
  expect_identical(serial.result, sharded.result);
  EXPECT_EQ(serial.metrics.counters, sharded.metrics.counters);
  // Every controller callback fires at the same cycle, in the same order.
  EXPECT_EQ(serial.controller_log, sharded.controller_log);
}

TEST_P(ShardedEngine, OversubscribedJobsMatchToo) {
  // More workers than SMs (and than cores, for large values) must change
  // nothing: the worker count clamps to the SM count.
  const Draw d = draw(GetParam() ^ 0xdeadbeef);
  const ObservedRun serial = run_observed(d, 1, ~0u);
  const ObservedRun sharded = run_observed(d, 64, ~0u);
  expect_identical(serial.result, sharded.result);
  EXPECT_EQ(serial.metrics.counters, sharded.metrics.counters);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedEngine,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(ShardedEngineEdge, SkipEveryBlockStillOneCycle) {
  const Draw d = draw(99);
  // skip_modulus = 1 skips every block: the launch is pure fast-forward.
  const ObservedRun serial = run_observed(d, 1, 1);
  const ObservedRun sharded = run_observed(d, 4, 1);
  EXPECT_EQ(serial.result.cycles, 1u);
  expect_identical(serial.result, sharded.result);
  EXPECT_EQ(serial.metrics.counters, sharded.metrics.counters);
  EXPECT_EQ(serial.controller_log, sharded.controller_log);
}

TEST(ShardedEngineEdge, SingleSmFallsBackToSerial) {
  Draw d = draw(7);
  d.config.n_sms = 1;
  const ObservedRun serial = run_observed(d, 1, ~0u);
  const ObservedRun sharded = run_observed(d, 4, ~0u);
  expect_identical(serial.result, sharded.result);
}

TEST(ShardedEngineEdge, TimeoutReportsIdenticalFailure) {
  const Draw d = draw(21);
  for (const std::uint64_t budget : {1ull, 7ull, 100ull, 1000ull}) {
    RunOptions options;
    options.max_cycles = budget;
    GpuSimulator simulator(d.config);
    WatchdogDiagnostic serial_diag;
    const Result<LaunchResult> serial =
        simulator.run_launch_checked(d.launch, options, &serial_diag);
    options.sim_jobs = 4;
    WatchdogDiagnostic sharded_diag;
    const Result<LaunchResult> sharded =
        simulator.run_launch_checked(d.launch, options, &sharded_diag);
    ASSERT_FALSE(serial.has_value());
    ASSERT_FALSE(sharded.has_value());
    EXPECT_EQ(serial.status().code(), sharded.status().code());
    EXPECT_EQ(serial.status().message(), sharded.status().message());
    EXPECT_EQ(serial_diag.cycle, sharded_diag.cycle);
    EXPECT_EQ(serial_diag.warp_insts, sharded_diag.warp_insts);
    EXPECT_EQ(serial_diag.dispatched_blocks, sharded_diag.dispatched_blocks);
  }
}

// The acceptance-level sweep: every Table VI workload model, every launch,
// serial vs sharded.  Scaled small so the whole sweep stays test-sized;
// the randomized ShardedEngine suite above covers the hostile geometries.
TEST(ShardedEngineWorkloads, AllWorkloadModelsMatchSerial) {
  const workloads::WorkloadScale scale{.divisor = 192, .seed = 0x7b90147};
  for (const workloads::Workload& workload :
       workloads::make_all_workloads(scale)) {
    const auto sources = workload.sources();
    // First and last launch per model: under the growth/contraction launch
    // sequences these are the extreme shapes; the middle launches add
    // wall-clock (minutes, on one core) without adding new regimes.
    std::vector<std::size_t> picks = {0};
    if (sources.size() > 1) picks.push_back(sources.size() - 1);
    for (const std::size_t i : picks) {
      RunOptions serial_options;
      RunOptions sharded_options;
      sharded_options.sim_jobs = 4;
      GpuSimulator simulator(fermi_config());
      const LaunchResult serial =
          simulator.run_launch(*sources[i], serial_options);
      const LaunchResult sharded =
          simulator.run_launch(*sources[i], sharded_options);
      SCOPED_TRACE(workload.name + " launch " + std::to_string(i));
      expect_identical(serial, sharded);
    }
  }
}

}  // namespace
}  // namespace tbp::sim
