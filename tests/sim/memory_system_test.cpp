#include "sim/memory_system.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tbp::sim {
namespace {

GpuConfig config() { return fermi_config(); }

/// Advances the memory system until `n` completions arrive.
std::vector<MemCompletion> drain(MemorySystem& memory, std::size_t n,
                                 std::uint64_t start = 1,
                                 std::uint64_t max_cycles = 100000) {
  std::vector<MemCompletion> out;
  for (std::uint64_t c = start; c < start + max_cycles && out.size() < n; ++c) {
    memory.tick(c, out);
  }
  return out;
}

TEST(MemorySystemTest, ColdLoadMissesAndCompletes) {
  MemorySystem memory(config());
  EXPECT_FALSE(memory.load(0, 100, /*token=*/7, /*cycle=*/0));
  const auto completions = drain(memory, 1);
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].sm_id, 0u);
  EXPECT_EQ(completions[0].token, 7u);
  EXPECT_FALSE(memory.busy());
}

TEST(MemorySystemTest, SecondLoadHitsL1AfterFill) {
  MemorySystem memory(config());
  (void)memory.load(0, 100, 1, 0);
  (void)drain(memory, 1);
  EXPECT_TRUE(memory.load(0, 100, 2, 5000));
  EXPECT_EQ(memory.stats().l1.hits, 1u);
}

TEST(MemorySystemTest, MshrMergesSameLine) {
  MemorySystem memory(config());
  EXPECT_FALSE(memory.load(0, 100, 1, 0));
  EXPECT_FALSE(memory.load(0, 100, 2, 0));
  EXPECT_FALSE(memory.load(0, 100, 3, 0));
  const auto completions = drain(memory, 3);
  // One fill wakes all three waiters; only one DRAM load happened.
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(memory.stats().l1_mshr_merges, 2u);
  EXPECT_EQ(memory.stats().dram.loads, 1u);
}

TEST(MemorySystemTest, CrossSmLoadsShareL2Fill) {
  MemorySystem memory(config());
  EXPECT_FALSE(memory.load(0, 100, 1, 0));
  EXPECT_FALSE(memory.load(1, 100, 1, 0));
  const auto completions = drain(memory, 2);
  ASSERT_EQ(completions.size(), 2u);
  // Both SMs got woken, but DRAM saw a single load (merged in L2 MSHR).
  EXPECT_EQ(memory.stats().dram.loads, 1u);
  EXPECT_EQ(memory.stats().l2_mshr_merges, 1u);
}

TEST(MemorySystemTest, L2HitIsFasterThanDram) {
  MemorySystem memory(config());
  // SM 0 warms the line into L2 (and its own L1).
  (void)memory.load(0, 100, 1, 0);
  std::vector<MemCompletion> out;
  std::uint64_t first_done = 0;
  for (std::uint64_t c = 1; c < 100000 && out.empty(); ++c) {
    memory.tick(c, out);
    first_done = c;
  }
  // SM 1 misses its L1 but hits L2.
  out.clear();
  const std::uint64_t start = first_done + 10;
  EXPECT_FALSE(memory.load(1, 100, 2, start));
  std::uint64_t second_done = 0;
  for (std::uint64_t c = start + 1; c < start + 100000 && out.empty(); ++c) {
    memory.tick(c, out);
    second_done = c;
  }
  EXPECT_LT(second_done - start, first_done);  // L2 hit beats full DRAM trip
  EXPECT_EQ(memory.stats().l2.hits, 1u);
}

TEST(MemorySystemTest, StoresProduceNoCompletions) {
  MemorySystem memory(config());
  memory.store(0, 100, 0);
  memory.store(0, 200, 0);
  const auto completions = drain(memory, 1, 1, 5000);
  EXPECT_TRUE(completions.empty());
  EXPECT_EQ(memory.stats().dram.stores, 2u);
  EXPECT_FALSE(memory.busy());
}

TEST(MemorySystemTest, StoreToCachedL2LineStopsAtL2) {
  MemorySystem memory(config());
  (void)memory.load(0, 100, 1, 0);
  (void)drain(memory, 1);
  const std::uint64_t dram_before = memory.stats().dram.stores;
  memory.store(0, 100, 6000);
  (void)drain(memory, 1, 6001, 2000);
  EXPECT_EQ(memory.stats().dram.stores, dram_before);  // absorbed by L2
}

TEST(MemorySystemTest, MshrOverflowStillCompletesEverything) {
  GpuConfig small = config();
  small.l1_mshrs = 4;
  MemorySystem memory(small);
  // 32 distinct lines from one SM: 4 in MSHRs, 28 queued in overflow.
  for (std::uint32_t i = 0; i < 32; ++i) {
    EXPECT_FALSE(memory.load(0, 1000 + i, i, 0));
  }
  EXPECT_GT(memory.stats().l1_mshr_stalls, 0u);
  const auto completions = drain(memory, 32);
  EXPECT_EQ(completions.size(), 32u);
  EXPECT_FALSE(memory.busy());
}

TEST(MemorySystemTest, BusyReflectsInFlightWork) {
  MemorySystem memory(config());
  EXPECT_FALSE(memory.busy());
  (void)memory.load(0, 1, 1, 0);
  EXPECT_TRUE(memory.busy());
  (void)drain(memory, 1);
  EXPECT_FALSE(memory.busy());
}

TEST(MemorySystemTest, ResetRestoresColdState) {
  MemorySystem memory(config());
  (void)memory.load(0, 100, 1, 0);
  (void)drain(memory, 1);
  memory.reset();
  EXPECT_FALSE(memory.busy());
  EXPECT_EQ(memory.stats().l1.hits + memory.stats().l1.misses, 0u);
  EXPECT_FALSE(memory.load(0, 100, 1, 0));  // cold again
}

TEST(MemorySystemTest, CompletionLatencyIncludesInterconnectBothWays) {
  const GpuConfig cfg = config();
  MemorySystem memory(cfg);
  (void)memory.load(0, 0, 1, 0);
  std::vector<MemCompletion> out;
  std::uint64_t done = 0;
  for (std::uint64_t c = 1; c < 100000 && out.empty(); ++c) {
    memory.tick(c, out);
    done = c;
  }
  // Round trip >= interconnect out + DRAM row miss + burst + L2 + back.
  const std::uint64_t lower_bound = cfg.lat.interconnect + cfg.dram.row_miss_cycles +
                                    cfg.dram.burst_cycles + cfg.lat.l2_hit +
                                    cfg.lat.interconnect;
  EXPECT_GE(done, lower_bound);
}

// Regression: overflowed loads whose line lands in the L1 while they wait
// must complete without ever touching the MSHR map.  The old hit-after-wait
// path re-registered the waiter under `mshr[line]` — bypassing the capacity
// check — and scheduled a synthetic fill whose delivery erased the whole
// entry; two such retries within a couple of cycles of each other then
// shared one entry, and the second synthetic fill either tripped the
// delivery assert or (under NDEBUG) woke waiters twice.  The scenario: a
// single-MSHR port, a long-flight miss pinning it, a deep overflow queue so
// same-line retries are spaced further apart than a short L2-hit flight.
TEST(MemorySystemTest, HitAfterWaitCompletesEachWaiterExactlyOnce) {
  GpuConfig cfg = config();
  cfg.l1_mshrs = 1;
  cfg.lat.interconnect = 1;  // L2-hit round trip: 1 + l2_hit + 1 cycles
  cfg.lat.l2_hit = 1;
  MemorySystem memory(cfg);

  constexpr std::uint64_t kHotLine = 7777;
  // SM 1 warms the hot line into the (shared) L2.
  EXPECT_FALSE(memory.load(1, kHotLine, 1, 0));
  (void)drain(memory, 1);

  // SM 0: one long DRAM-bound miss occupies the only MSHR...
  const std::uint64_t start = 10000;
  EXPECT_FALSE(memory.load(0, 42, 2, start));
  // ...then a deep overflow queue: mostly distinct cold lines, with the hot
  // line sprinkled throughout.  Rotation retries ~64 entries per cycle, so
  // with ~300 queued a given entry retries every few cycles — longer than
  // the hot line's 3-cycle L2-hit flight once some retry allocates it, so
  // later hot-line retries find the line already in the L1 (the hit-after-
  // wait path) instead of merging, several of them in adjacent cycles.
  std::uint32_t n_queued = 0;
  std::uint32_t n_hot = 0;
  for (std::uint32_t i = 0; i < 300; ++i) {
    const bool hot = i % 6 == 5;
    const std::uint64_t line = hot ? kHotLine : 100000 + i;
    n_hot += hot ? 1 : 0;
    EXPECT_FALSE(memory.load(0, line, 100 + i, start));
    ++n_queued;
  }
  ASSERT_GT(n_hot, 10u);

  std::vector<MemCompletion> out;
  // token -> completion cycle, for the duplicate and clustering checks.
  std::vector<std::uint64_t> completed_at(100 + n_queued, 0);
  std::uint64_t hit_wait_cluster = 0;  ///< hot completions <= 2 cycles apart
  std::uint64_t last_hot_completion = 0;
  for (std::uint64_t c = start + 1; c < start + 2000000; ++c) {
    out.clear();
    memory.tick(c, out);
    for (const MemCompletion& done : out) {
      ASSERT_EQ(completed_at[done.token], 0u)
          << "token " << done.token << " completed twice";
      completed_at[done.token] = c;
      if (done.token >= 100 && (done.token - 100) % 6 == 5) {
        if (last_hot_completion != 0 && c - last_hot_completion <= 2) {
          ++hit_wait_cluster;
        }
        last_hot_completion = c;
      }
    }
    if (!memory.busy()) break;
  }
  EXPECT_FALSE(memory.busy());
  EXPECT_EQ(completed_at[2] != 0, true);  // the MSHR-pinning miss
  for (std::uint32_t i = 0; i < n_queued; ++i) {
    EXPECT_NE(completed_at[100 + i], 0u) << "token " << (100 + i) << " lost";
  }
  // The dangerous shape actually occurred: hit-after-wait completions of
  // the hot line clustered within <= 2 cycles of each other (the spacing
  // that made the old synthetic-fill scheme double-wake / assert).
  EXPECT_GT(hit_wait_cluster, 0u);
  // And the hit path ran at all: the only L1 hits possible here are retry
  // probes finding the hot line filled (every issue-time probe missed).
  EXPECT_GE(memory.stats().l1.hits, 2u);
}

// Regression: the L2 MSHR pool is a soft capacity knob — requests past the
// limit are still accepted — but overflowing it must be visible in stats.
TEST(MemorySystemTest, L2MshrOverflowIsCountedAndStillCompletes) {
  GpuConfig cfg = config();
  cfg.l2_mshrs = 1;
  MemorySystem memory(cfg);
  // Two distinct cold lines miss L2 back to back: the first takes the only
  // L2 MSHR, the second overflows the pool (counted) yet still completes.
  EXPECT_FALSE(memory.load(0, 100, 1, 0));
  EXPECT_FALSE(memory.load(0, 200, 2, 0));
  const auto completions = drain(memory, 2);
  EXPECT_EQ(completions.size(), 2u);
  EXPECT_EQ(memory.stats().l2_mshr_overflows, 1u);
  EXPECT_EQ(memory.stats().dram.loads, 2u);
  EXPECT_FALSE(memory.busy());

  // Merges into an existing entry are not overflows.
  MemorySystem merged(cfg);
  EXPECT_FALSE(merged.load(0, 100, 1, 0));
  EXPECT_FALSE(merged.load(1, 100, 1, 0));
  (void)drain(merged, 2);
  EXPECT_EQ(merged.stats().l2_mshr_overflows, 0u);
  EXPECT_EQ(merged.stats().l2_mshr_merges, 1u);
}

}  // namespace
}  // namespace tbp::sim
