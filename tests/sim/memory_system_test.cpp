#include "sim/memory_system.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tbp::sim {
namespace {

GpuConfig config() { return fermi_config(); }

/// Advances the memory system until `n` completions arrive.
std::vector<MemCompletion> drain(MemorySystem& memory, std::size_t n,
                                 std::uint64_t start = 1,
                                 std::uint64_t max_cycles = 100000) {
  std::vector<MemCompletion> out;
  for (std::uint64_t c = start; c < start + max_cycles && out.size() < n; ++c) {
    memory.tick(c, out);
  }
  return out;
}

TEST(MemorySystemTest, ColdLoadMissesAndCompletes) {
  MemorySystem memory(config());
  EXPECT_FALSE(memory.load(0, 100, /*token=*/7, /*cycle=*/0));
  const auto completions = drain(memory, 1);
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].sm_id, 0u);
  EXPECT_EQ(completions[0].token, 7u);
  EXPECT_FALSE(memory.busy());
}

TEST(MemorySystemTest, SecondLoadHitsL1AfterFill) {
  MemorySystem memory(config());
  (void)memory.load(0, 100, 1, 0);
  (void)drain(memory, 1);
  EXPECT_TRUE(memory.load(0, 100, 2, 5000));
  EXPECT_EQ(memory.stats().l1.hits, 1u);
}

TEST(MemorySystemTest, MshrMergesSameLine) {
  MemorySystem memory(config());
  EXPECT_FALSE(memory.load(0, 100, 1, 0));
  EXPECT_FALSE(memory.load(0, 100, 2, 0));
  EXPECT_FALSE(memory.load(0, 100, 3, 0));
  const auto completions = drain(memory, 3);
  // One fill wakes all three waiters; only one DRAM load happened.
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(memory.stats().l1_mshr_merges, 2u);
  EXPECT_EQ(memory.stats().dram.loads, 1u);
}

TEST(MemorySystemTest, CrossSmLoadsShareL2Fill) {
  MemorySystem memory(config());
  EXPECT_FALSE(memory.load(0, 100, 1, 0));
  EXPECT_FALSE(memory.load(1, 100, 1, 0));
  const auto completions = drain(memory, 2);
  ASSERT_EQ(completions.size(), 2u);
  // Both SMs got woken, but DRAM saw a single load (merged in L2 MSHR).
  EXPECT_EQ(memory.stats().dram.loads, 1u);
  EXPECT_EQ(memory.stats().l2_mshr_merges, 1u);
}

TEST(MemorySystemTest, L2HitIsFasterThanDram) {
  MemorySystem memory(config());
  // SM 0 warms the line into L2 (and its own L1).
  (void)memory.load(0, 100, 1, 0);
  std::vector<MemCompletion> out;
  std::uint64_t first_done = 0;
  for (std::uint64_t c = 1; c < 100000 && out.empty(); ++c) {
    memory.tick(c, out);
    first_done = c;
  }
  // SM 1 misses its L1 but hits L2.
  out.clear();
  const std::uint64_t start = first_done + 10;
  EXPECT_FALSE(memory.load(1, 100, 2, start));
  std::uint64_t second_done = 0;
  for (std::uint64_t c = start + 1; c < start + 100000 && out.empty(); ++c) {
    memory.tick(c, out);
    second_done = c;
  }
  EXPECT_LT(second_done - start, first_done);  // L2 hit beats full DRAM trip
  EXPECT_EQ(memory.stats().l2.hits, 1u);
}

TEST(MemorySystemTest, StoresProduceNoCompletions) {
  MemorySystem memory(config());
  memory.store(0, 100, 0);
  memory.store(0, 200, 0);
  const auto completions = drain(memory, 1, 1, 5000);
  EXPECT_TRUE(completions.empty());
  EXPECT_EQ(memory.stats().dram.stores, 2u);
  EXPECT_FALSE(memory.busy());
}

TEST(MemorySystemTest, StoreToCachedL2LineStopsAtL2) {
  MemorySystem memory(config());
  (void)memory.load(0, 100, 1, 0);
  (void)drain(memory, 1);
  const std::uint64_t dram_before = memory.stats().dram.stores;
  memory.store(0, 100, 6000);
  (void)drain(memory, 1, 6001, 2000);
  EXPECT_EQ(memory.stats().dram.stores, dram_before);  // absorbed by L2
}

TEST(MemorySystemTest, MshrOverflowStillCompletesEverything) {
  GpuConfig small = config();
  small.l1_mshrs = 4;
  MemorySystem memory(small);
  // 32 distinct lines from one SM: 4 in MSHRs, 28 queued in overflow.
  for (std::uint32_t i = 0; i < 32; ++i) {
    EXPECT_FALSE(memory.load(0, 1000 + i, i, 0));
  }
  EXPECT_GT(memory.stats().l1_mshr_stalls, 0u);
  const auto completions = drain(memory, 32);
  EXPECT_EQ(completions.size(), 32u);
  EXPECT_FALSE(memory.busy());
}

TEST(MemorySystemTest, BusyReflectsInFlightWork) {
  MemorySystem memory(config());
  EXPECT_FALSE(memory.busy());
  (void)memory.load(0, 1, 1, 0);
  EXPECT_TRUE(memory.busy());
  (void)drain(memory, 1);
  EXPECT_FALSE(memory.busy());
}

TEST(MemorySystemTest, ResetRestoresColdState) {
  MemorySystem memory(config());
  (void)memory.load(0, 100, 1, 0);
  (void)drain(memory, 1);
  memory.reset();
  EXPECT_FALSE(memory.busy());
  EXPECT_EQ(memory.stats().l1.hits + memory.stats().l1.misses, 0u);
  EXPECT_FALSE(memory.load(0, 100, 1, 0));  // cold again
}

TEST(MemorySystemTest, CompletionLatencyIncludesInterconnectBothWays) {
  const GpuConfig cfg = config();
  MemorySystem memory(cfg);
  (void)memory.load(0, 0, 1, 0);
  std::vector<MemCompletion> out;
  std::uint64_t done = 0;
  for (std::uint64_t c = 1; c < 100000 && out.empty(); ++c) {
    memory.tick(c, out);
    done = c;
  }
  // Round trip >= interconnect out + DRAM row miss + burst + L2 + back.
  const std::uint64_t lower_bound = cfg.lat.interconnect + cfg.dram.row_miss_cycles +
                                    cfg.dram.burst_cycles + cfg.lat.l2_hit +
                                    cfg.lat.interconnect;
  EXPECT_GE(done, lower_bound);
}

}  // namespace
}  // namespace tbp::sim
