// Edge cases for the IPC accessors: zero-span and malformed (end before
// start) units must report 0 instead of dividing by zero or wrapping the
// unsigned subtraction to ~2^64, and values near the uint64 range must stay
// finite through the double conversion.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "sim/controller.hpp"
#include "sim/gpu.hpp"

namespace tbp::sim {
namespace {

constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();

TEST(FixedUnitIpcTest, ZeroSpanIsZero) {
  FixedUnit unit;
  unit.start_cycle = 100;
  unit.end_cycle = 100;
  unit.warp_insts = 50;
  EXPECT_EQ(unit.ipc(), 0.0);
}

TEST(FixedUnitIpcTest, EndBeforeStartIsZeroNotWrapped) {
  FixedUnit unit;
  unit.start_cycle = 200;
  unit.end_cycle = 100;  // malformed: the subtraction would wrap to ~2^64
  unit.warp_insts = 50;
  EXPECT_EQ(unit.ipc(), 0.0);
}

TEST(FixedUnitIpcTest, NormalSpan) {
  FixedUnit unit;
  unit.start_cycle = 100;
  unit.end_cycle = 300;
  unit.warp_insts = 500;
  EXPECT_DOUBLE_EQ(unit.ipc(), 2.5);
}

TEST(FixedUnitIpcTest, OverflowAdjacentValuesStayFinite) {
  FixedUnit unit;
  unit.start_cycle = 0;
  unit.end_cycle = kMax;
  unit.warp_insts = kMax;
  const double ipc = unit.ipc();
  EXPECT_TRUE(std::isfinite(ipc));
  EXPECT_NEAR(ipc, 1.0, 1e-9);

  unit.end_cycle = 1;  // span 1, maximal insts: huge but finite
  EXPECT_TRUE(std::isfinite(unit.ipc()));
  EXPECT_GT(unit.ipc(), 1e18);
}

TEST(SamplingUnitIpcTest, ZeroSpanIsZero) {
  SamplingUnit unit;
  unit.start_cycle = 7;
  unit.end_cycle = 7;
  unit.warp_insts = 10;
  EXPECT_EQ(unit.ipc(), 0.0);
}

TEST(SamplingUnitIpcTest, EndBeforeStartIsZeroNotWrapped) {
  SamplingUnit unit;
  unit.start_cycle = kMax;
  unit.end_cycle = 0;
  unit.warp_insts = 10;
  EXPECT_EQ(unit.ipc(), 0.0);
}

TEST(SamplingUnitIpcTest, NormalSpan) {
  SamplingUnit unit;
  unit.start_cycle = 10;
  unit.end_cycle = 20;
  unit.warp_insts = 5;
  EXPECT_DOUBLE_EQ(unit.ipc(), 0.5);
}

TEST(MachineIpcTest, ZeroCyclesIsZero) {
  LaunchResult result;
  result.cycles = 0;
  result.sim_warp_insts = 123;
  EXPECT_EQ(result.machine_ipc(), 0.0);
}

TEST(MachineIpcTest, OverflowAdjacentValuesStayFinite) {
  LaunchResult result;
  result.cycles = 1;
  result.sim_warp_insts = kMax;
  EXPECT_TRUE(std::isfinite(result.machine_ipc()));
  result.cycles = kMax;
  result.sim_warp_insts = kMax;
  EXPECT_NEAR(result.machine_ipc(), 1.0, 1e-9);
}

}  // namespace
}  // namespace tbp::sim
