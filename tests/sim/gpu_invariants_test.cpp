// Property-style invariant sweep of the timing simulator: for randomized
// workload shapes and machine geometries, conservation and determinism
// properties must hold regardless of the parameter draw.
#include <gtest/gtest.h>

#include "profile/profiler.hpp"
#include "sim/gpu.hpp"
#include "stats/rng.hpp"
#include "trace/generator.hpp"

namespace tbp::sim {
namespace {

struct Draw {
  trace::SyntheticLaunch launch;
  GpuConfig config;
};

/// Randomizes a launch and machine from a seed; every parameter stays in a
/// range where the launch terminates quickly.
Draw draw(std::uint64_t seed) {
  stats::Rng rng(seed);
  trace::BlockBehavior b;
  b.loop_iterations = 2 + static_cast<std::uint32_t>(rng.below(8));
  b.alu_per_iteration = 1 + static_cast<std::uint32_t>(rng.below(6));
  b.sfu_per_iteration = static_cast<std::uint32_t>(rng.below(3));
  b.mem_per_iteration = static_cast<std::uint32_t>(rng.below(4));
  b.stores_per_iteration = static_cast<std::uint32_t>(rng.below(3));
  b.shared_per_iteration = static_cast<std::uint32_t>(rng.below(3));
  b.branch_divergence = rng.uniform(0.0, 0.5);
  b.lines_per_access = static_cast<std::uint8_t>(1 + rng.below(8));
  b.pattern = static_cast<trace::AddressPattern>(rng.below(3));
  b.working_set_lines = 1u << (8 + rng.below(8));
  b.region_base_line = rng.below(2) ? (1u << 20) : 0;
  b.barrier_per_iteration = rng.below(4) == 0;
  b.stride_lines = static_cast<std::uint32_t>(1 + rng.below(64));

  trace::KernelInfo kernel = trace::make_synthetic_kernel_info("prop");
  kernel.threads_per_block = 128u << rng.below(3);  // 128/256/512

  const auto n_blocks = static_cast<std::uint32_t>(8 + rng.below(60));
  // Jitter per block so blocks differ.
  const std::uint32_t base_iters = b.loop_iterations;
  auto behavior = [b, base_iters, seed](std::uint32_t block_id) {
    trace::BlockBehavior out = b;
    stats::Rng block_rng = stats::Rng(seed).substream(block_id);
    out.loop_iterations =
        base_iters + static_cast<std::uint32_t>(block_rng.below(3));
    return out;
  };

  GpuConfig config = fermi_config();
  config.n_sms = static_cast<std::uint32_t>(1 + rng.below(8));
  config.n_channels = static_cast<std::uint32_t>(1 + rng.below(6));
  config.l1_mshrs = static_cast<std::uint32_t>(8 + rng.below(64));
  return Draw{
      trace::SyntheticLaunch(kernel, n_blocks, seed ^ 0x5eed, behavior),
      config,
  };
}

class GpuInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GpuInvariants, InstructionConservation) {
  const Draw d = draw(GetParam());
  const profile::LaunchProfile profile = profile::profile_launch(d.launch);
  GpuSimulator simulator(d.config);
  const LaunchResult result = simulator.run_launch(d.launch);
  // Every profiled instruction is simulated exactly once.
  EXPECT_EQ(result.sim_warp_insts, profile.total_warp_insts());
  EXPECT_EQ(result.sim_thread_insts, profile.total_thread_insts());
}

TEST_P(GpuInvariants, PerSmDecomposition) {
  const Draw d = draw(GetParam());
  GpuSimulator simulator(d.config);
  const LaunchResult result = simulator.run_launch(d.launch);
  std::uint64_t warp_sum = 0;
  for (const SmLaunchStats& sm : result.per_sm) warp_sum += sm.warp_insts;
  EXPECT_EQ(warp_sum, result.sim_warp_insts);
  EXPECT_EQ(result.per_sm.size(), d.config.n_sms);
}

TEST_P(GpuInvariants, UnitsTileTheRun) {
  const Draw d = draw(GetParam());
  GpuSimulator simulator(d.config);
  const LaunchResult result = simulator.run_launch(d.launch);
  std::uint64_t unit_insts = 0;
  for (std::size_t i = 0; i < result.tb_units.size(); ++i) {
    unit_insts += result.tb_units[i].warp_insts;
    if (i > 0) {
      EXPECT_GE(result.tb_units[i].start_cycle,
                result.tb_units[i - 1].end_cycle);
    }
  }
  EXPECT_EQ(unit_insts, result.sim_warp_insts);
}

TEST_P(GpuInvariants, IpcWithinMachineBounds) {
  const Draw d = draw(GetParam());
  GpuSimulator simulator(d.config);
  const LaunchResult result = simulator.run_launch(d.launch);
  EXPECT_GT(result.machine_ipc(), 0.0);
  EXPECT_LE(result.machine_ipc(), static_cast<double>(d.config.n_sms));
}

TEST_P(GpuInvariants, DeterministicReplay) {
  const Draw d = draw(GetParam());
  GpuSimulator simulator(d.config);
  const LaunchResult a = simulator.run_launch(d.launch);
  const LaunchResult b = simulator.run_launch(d.launch);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.mem.l1.hits, b.mem.l1.hits);
  EXPECT_EQ(a.mem.dram.row_hits, b.mem.dram.row_hits);
}

TEST_P(GpuInvariants, MemoryStatsAreConsistent) {
  const Draw d = draw(GetParam());
  GpuSimulator simulator(d.config);
  const LaunchResult result = simulator.run_launch(d.launch);
  // DRAM never sees more loads than L1 misses produce.
  EXPECT_LE(result.mem.dram.loads, result.mem.l1.misses);
  // Every L2 load miss either allocated an L2 MSHR (one DRAM load) or
  // merged into one.
  EXPECT_EQ(result.mem.l2.misses,
            result.mem.dram.loads + result.mem.l2_mshr_merges);
}

INSTANTIATE_TEST_SUITE_P(RandomDraws, GpuInvariants,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace tbp::sim
