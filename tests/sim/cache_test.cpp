#include "sim/cache.hpp"

#include <gtest/gtest.h>

namespace tbp::sim {
namespace {

CacheGeometry tiny_cache() {
  // 4 sets x 2 ways x 128 B lines = 1 KB.
  return CacheGeometry{.bytes = 1024, .line_bytes = 128, .associativity = 2};
}

TEST(CacheTest, GeometryMath) {
  EXPECT_EQ(tiny_cache().n_sets(), 4u);
  const CacheGeometry fermi_l1{.bytes = 16384, .line_bytes = 128, .associativity = 8};
  EXPECT_EQ(fermi_l1.n_sets(), 16u);
}

TEST(CacheTest, MissThenHitAfterFill) {
  SetAssocCache cache(tiny_cache());
  EXPECT_FALSE(cache.access(0));
  cache.fill(0);
  EXPECT_TRUE(cache.access(0));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CacheTest, ContainsDoesNotTouchStatsOrLru) {
  SetAssocCache cache(tiny_cache());
  cache.fill(0);
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(4));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(CacheTest, LruEvictionWithinSet) {
  SetAssocCache cache(tiny_cache());
  // Lines 0, 4, 8 all map to set 0 (4 sets).  Two ways.
  cache.fill(0);
  cache.fill(4);
  EXPECT_TRUE(cache.access(0));   // 0 is now MRU
  cache.fill(8);                  // evicts 4 (LRU)
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(4));
  EXPECT_TRUE(cache.contains(8));
}

TEST(CacheTest, AccessRefreshesLru) {
  SetAssocCache cache(tiny_cache());
  cache.fill(0);
  cache.fill(4);
  // Without the refresh 0 would be LRU; access makes 4 the victim.
  EXPECT_TRUE(cache.access(0));
  cache.fill(8);
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(4));
}

TEST(CacheTest, SetsAreIndependent) {
  SetAssocCache cache(tiny_cache());
  cache.fill(0);  // set 0
  cache.fill(1);  // set 1
  cache.fill(2);  // set 2
  cache.fill(3);  // set 3
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(CacheTest, DoubleFillDoesNotDuplicate) {
  SetAssocCache cache(tiny_cache());
  cache.fill(0);
  cache.fill(0);  // duplicate fill (e.g. racing MSHR)
  cache.fill(4);  // second way; nothing should have been evicted
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(4));
}

TEST(CacheTest, ResetClearsEverything) {
  SetAssocCache cache(tiny_cache());
  cache.fill(0);
  (void)cache.access(0);
  cache.reset();
  EXPECT_FALSE(cache.contains(0));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(CacheTest, HitRateMath) {
  CacheStats stats;
  stats.hits = 3;
  stats.misses = 1;
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.75);
  EXPECT_DOUBLE_EQ(CacheStats{}.hit_rate(), 0.0);
}

TEST(CacheTest, LargeLineNumbersMapCorrectly) {
  SetAssocCache cache(tiny_cache());
  const std::uint64_t big = (1ull << 40) + 4;  // set 0
  cache.fill(big);
  EXPECT_TRUE(cache.contains(big));
  EXPECT_FALSE(cache.contains(4));  // same set, different tag
}

}  // namespace
}  // namespace tbp::sim
