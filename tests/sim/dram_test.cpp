#include "sim/dram.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/config.hpp"

namespace tbp::sim {
namespace {

GpuConfig config() { return fermi_config(); }

/// Runs the channel until `n` replies arrive or `max_cycles` pass.
std::vector<DramReply> drain(DramChannel& channel, std::size_t n,
                             std::uint64_t start_cycle = 0,
                             std::uint64_t max_cycles = 100000) {
  std::vector<DramReply> replies;
  for (std::uint64_t c = start_cycle; c < start_cycle + max_cycles; ++c) {
    channel.tick(c, replies);
    if (replies.size() >= n) break;
  }
  return replies;
}

TEST(DramTest, SingleLoadCompletes) {
  DramChannel channel(config(), 0);
  channel.push({.line = 0, .is_store = false, .arrival = 0});
  const auto replies = drain(channel, 1);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].line, 0u);
  // First access: row miss + burst.
  EXPECT_EQ(replies[0].ready,
            config().dram.row_miss_cycles + config().dram.burst_cycles);
  EXPECT_FALSE(channel.busy());
}

TEST(DramTest, StoreProducesNoReply) {
  DramChannel channel(config(), 0);
  channel.push({.line = 0, .is_store = true, .arrival = 0});
  const auto replies = drain(channel, 1, 0, 1000);
  EXPECT_TRUE(replies.empty());
  EXPECT_FALSE(channel.busy());
  EXPECT_EQ(channel.stats().stores, 1u);
}

TEST(DramTest, RowHitIsFasterThanRowMiss) {
  const GpuConfig cfg = config();
  DramChannel channel(cfg, 0);
  // Same page: second access is a row hit.
  channel.push({.line = 0, .is_store = false, .arrival = 0});
  channel.push({.line = cfg.n_channels, .is_store = false, .arrival = 0});
  const auto replies = drain(channel, 2);
  ASSERT_EQ(replies.size(), 2u);
  const std::uint64_t first = replies[0].ready;
  const std::uint64_t second = replies[1].ready;
  // The second (row hit) is scheduled one cycle later but only pays the
  // row-hit latency; it must complete well before a second row miss would.
  EXPECT_LT(second - first, cfg.dram.row_miss_cycles);
}

TEST(DramTest, FrFcfsPrefersRowHitOverOlderMiss) {
  const GpuConfig cfg = config();
  DramChannel channel(cfg, 0);
  const std::uint64_t lines_per_page = cfg.lines_per_dram_page();
  // Open a row in bank 0.
  channel.push({.line = 0, .is_store = false, .arrival = 0});
  std::vector<DramReply> replies;
  channel.tick(0, replies);  // schedules the opener
  // Now: a miss to bank 0 (different row) arrives BEFORE a hit to the open
  // row.  Wait until bank 0 is idle again, then tick once: FR-FCFS must
  // pick the row hit despite the miss being older.
  const std::uint64_t other_row = lines_per_page * cfg.banks_per_channel *
                                  cfg.n_channels;  // bank 0, row 1
  channel.push({.line = other_row, .is_store = false, .arrival = 1});
  channel.push({.line = cfg.n_channels * 2, .is_store = false, .arrival = 2});
  const auto all = drain(channel, 3, 1);
  ASSERT_EQ(all.size(), 3u);
  // The hit (line 2*n_channels, same row 0) completes before the miss.
  std::uint64_t hit_ready = 0;
  std::uint64_t miss_ready = 0;
  for (const DramReply& r : all) {
    if (r.line == cfg.n_channels * 2) hit_ready = r.ready;
    if (r.line == other_row) miss_ready = r.ready;
  }
  EXPECT_LT(hit_ready, miss_ready);
  EXPECT_GE(channel.stats().row_hits, 1u);
}

TEST(DramTest, BusSerializesBankParallelism) {
  const GpuConfig cfg = config();
  DramChannel channel(cfg, 0);
  // Four requests to four different banks, all arriving at cycle 0: banks
  // overlap their row activations but the data bursts serialize.
  const std::uint64_t bank_stride = cfg.lines_per_dram_page() * cfg.n_channels;
  for (std::uint64_t b = 0; b < 4; ++b) {
    channel.push({.line = b * bank_stride, .is_store = false, .arrival = 0});
  }
  auto replies = drain(channel, 4);
  ASSERT_EQ(replies.size(), 4u);
  std::vector<std::uint64_t> ready;
  for (const auto& r : replies) ready.push_back(r.ready);
  std::sort(ready.begin(), ready.end());
  for (std::size_t i = 1; i < ready.size(); ++i) {
    EXPECT_GE(ready[i] - ready[i - 1], cfg.dram.burst_cycles);
  }
}

TEST(DramTest, SystemRoutesByChannel) {
  const GpuConfig cfg = config();
  DramSystem dram(cfg);
  // One load per channel; all should complete independently.
  for (std::uint64_t c = 0; c < cfg.n_channels; ++c) {
    dram.push(c, /*is_store=*/false, 0);
  }
  std::vector<DramReply> replies;
  for (std::uint64_t cycle = 0; cycle < 1000 && replies.size() < cfg.n_channels;
       ++cycle) {
    dram.tick(cycle, replies);
  }
  EXPECT_EQ(replies.size(), cfg.n_channels);
  // No bus conflicts across channels: all finish at the same time.
  for (const DramReply& r : replies) {
    EXPECT_EQ(r.ready, replies[0].ready);
  }
  EXPECT_FALSE(dram.busy());
}

TEST(DramTest, StatsAccumulate) {
  const GpuConfig cfg = config();
  DramSystem dram(cfg);
  for (int i = 0; i < 10; ++i) dram.push(0, false, 0);
  std::vector<DramReply> replies;
  for (std::uint64_t cycle = 0; cycle < 10000 && replies.size() < 10; ++cycle) {
    dram.tick(cycle, replies);
  }
  const DramStats stats = dram.aggregate_stats();
  EXPECT_EQ(stats.loads, 10u);
  EXPECT_EQ(stats.row_hits + stats.row_misses, 10u);
  EXPECT_GE(stats.row_hits, 9u);  // same line: everything after the opener hits
  EXPECT_GT(stats.mean_queue_depth(), 0.0);
}

TEST(DramTest, ResetClearsState) {
  DramSystem dram(config());
  dram.push(0, false, 0);
  dram.reset();
  EXPECT_FALSE(dram.busy());
  EXPECT_EQ(dram.aggregate_stats().loads, 0u);
}

TEST(DramTest, DeterministicReplies) {
  const GpuConfig cfg = config();
  auto run = [&] {
    DramChannel channel(cfg, 0);
    for (std::uint64_t i = 0; i < 20; ++i) {
      channel.push({.line = i * 37 % 64 * cfg.n_channels, .is_store = i % 3 == 0,
                    .arrival = i / 2});
    }
    std::vector<DramReply> replies;
    for (std::uint64_t c = 0; c < 5000; ++c) channel.tick(c, replies);
    return replies;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].line, b[i].line);
    EXPECT_EQ(a[i].ready, b[i].ready);
  }
}

}  // namespace
}  // namespace tbp::sim
