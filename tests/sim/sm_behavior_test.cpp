// SM-level behaviours pinned through hand-built traces: barrier semantics,
// store-only kernels, warp-width edge cases, single-slot occupancy, and the
// latency arithmetic of individual instructions.
#include <gtest/gtest.h>

#include "sim/gpu.hpp"
#include "trace/kernel.hpp"

namespace tbp::sim {
namespace {

using trace::BlockTrace;
using trace::KernelInfo;
using trace::Op;
using trace::WarpInst;

WarpInst make_inst(Op op, std::uint8_t active = 32) {
  return WarpInst{.op = op, .active_threads = active, .bb_id = 0, .mem = {}};
}

WarpInst load_lines(std::uint64_t base, std::uint8_t n_lines,
                    std::uint32_t stride = 1) {
  return WarpInst{
      .op = Op::kLoadGlobal,
      .active_threads = 32,
      .bb_id = 1,
      .mem = {.base_line = base, .line_stride = stride, .n_lines = n_lines}};
}

/// A launch whose every block runs the same hand-written warp streams.
class FixedTrace final : public trace::LaunchTraceSource {
 public:
  FixedTrace(KernelInfo kernel, std::uint32_t n_blocks, BlockTrace trace)
      : kernel_(std::move(kernel)), n_blocks_(n_blocks), trace_(std::move(trace)) {}

  [[nodiscard]] const KernelInfo& kernel() const override { return kernel_; }
  [[nodiscard]] std::uint32_t n_blocks() const override { return n_blocks_; }
  [[nodiscard]] BlockTrace block_trace(std::uint32_t) const override {
    return trace_;
  }

 private:
  KernelInfo kernel_;
  std::uint32_t n_blocks_;
  BlockTrace trace_;
};

KernelInfo one_warp_kernel() {
  KernelInfo k;
  k.name = "one_warp";
  k.threads_per_block = 32;
  k.registers_per_thread = 16;
  k.shared_mem_per_block = 0;
  k.n_basic_blocks = 4;
  return k;
}

GpuConfig one_sm_config() {
  GpuConfig config = fermi_config();
  config.n_sms = 1;
  return config;
}

TEST(SmBehaviorTest, SingleAluInstructionCostsIssuePlusDrain) {
  // One warp, one ALU inst + exit: exit issues after the ALU's dependent
  // latency expires.
  BlockTrace trace;
  trace.warps = {{make_inst(Op::kIntAlu), make_inst(Op::kExit)}};
  FixedTrace launch(one_warp_kernel(), 1, trace);
  const GpuConfig config = one_sm_config();
  const LaunchResult result = GpuSimulator(config).run_launch(launch);
  // ALU at cycle 0, exit at cycle lat.int_alu, +1 for the loop increment.
  EXPECT_EQ(result.cycles, config.lat.int_alu + 1);
}

TEST(SmBehaviorTest, SfuCostsMoreThanAlu) {
  BlockTrace alu;
  alu.warps = {{make_inst(Op::kIntAlu), make_inst(Op::kExit)}};
  BlockTrace sfu;
  sfu.warps = {{make_inst(Op::kSfu), make_inst(Op::kExit)}};
  const GpuConfig config = one_sm_config();
  const LaunchResult a =
      GpuSimulator(config).run_launch(FixedTrace(one_warp_kernel(), 1, alu));
  const LaunchResult b =
      GpuSimulator(config).run_launch(FixedTrace(one_warp_kernel(), 1, sfu));
  EXPECT_EQ(b.cycles - a.cycles, config.lat.sfu - config.lat.int_alu);
}

TEST(SmBehaviorTest, L1HitLatencyAppliesToCachedLoads) {
  // Two identical loads: the first misses to DRAM, the second hits L1.
  BlockTrace trace;
  trace.warps = {{load_lines(64, 1), load_lines(64, 1), make_inst(Op::kExit)}};
  const GpuConfig config = one_sm_config();
  const LaunchResult result =
      GpuSimulator(config).run_launch(FixedTrace(one_warp_kernel(), 1, trace));
  EXPECT_EQ(result.mem.l1.hits, 1u);
  EXPECT_EQ(result.mem.l1.misses, 1u);
  EXPECT_EQ(result.mem.dram.loads, 1u);
}

TEST(SmBehaviorTest, StoreOnlyKernelNeverStallsOnMemory) {
  BlockTrace trace;
  std::vector<WarpInst> stream;
  for (int i = 0; i < 10; ++i) {
    stream.push_back(WarpInst{
        .op = Op::kStoreGlobal,
        .active_threads = 32,
        .bb_id = 1,
        .mem = {.base_line = static_cast<std::uint64_t>(i * 100),
                .line_stride = 1,
                .n_lines = 4}});
  }
  stream.push_back(make_inst(Op::kExit));
  trace.warps = {stream};
  const GpuConfig config = one_sm_config();
  const LaunchResult result =
      GpuSimulator(config).run_launch(FixedTrace(one_warp_kernel(), 1, trace));
  // Fire-and-forget: each store costs only the issue latency, and the
  // launch ends without waiting for the write-through traffic to drain
  // (stores still queued at the end never reach the DRAM counters).
  EXPECT_LE(result.cycles, 10 * config.lat.store_issue + 2);
  EXPECT_GT(result.mem.dram.stores, 0u);
  EXPECT_LE(result.mem.dram.stores, 40u);
}

TEST(SmBehaviorTest, BarrierHoldsFastWarpForSlowWarp) {
  // Warp 0 reaches the barrier immediately; warp 1 does a DRAM round trip
  // first.  Warp 0's exit must wait for warp 1's arrival.
  KernelInfo k = one_warp_kernel();
  k.threads_per_block = 64;  // two warps
  BlockTrace trace;
  trace.warps = {
      {make_inst(Op::kBarrier), make_inst(Op::kExit)},
      {load_lines(0, 1), make_inst(Op::kBarrier), make_inst(Op::kExit)},
  };
  const GpuConfig config = one_sm_config();
  const LaunchResult result =
      GpuSimulator(config).run_launch(FixedTrace(k, 1, trace));
  // The run must last at least a full memory round trip (warp 1's load)
  // even though warp 0 had nothing to do.
  EXPECT_GT(result.cycles, static_cast<std::uint64_t>(config.lat.interconnect) * 2 +
                               config.dram.row_miss_cycles);
}

TEST(SmBehaviorTest, PartialWarpActiveCountsFlowIntoThreadInsts) {
  BlockTrace trace;
  trace.warps = {{make_inst(Op::kIntAlu, 7), make_inst(Op::kExit, 32)}};
  const LaunchResult result = GpuSimulator(one_sm_config())
                                  .run_launch(FixedTrace(one_warp_kernel(), 1, trace));
  EXPECT_EQ(result.sim_warp_insts, 2u);
  EXPECT_EQ(result.sim_thread_insts, 7u + 32u);
}

TEST(SmBehaviorTest, StridedFootprintTouchesDistinctSets) {
  // 8 lines with a large stride land in different cache sets; all miss.
  BlockTrace trace;
  trace.warps = {{load_lines(0, 8, 1024), make_inst(Op::kExit)}};
  const LaunchResult result = GpuSimulator(one_sm_config())
                                  .run_launch(FixedTrace(one_warp_kernel(), 1, trace));
  EXPECT_EQ(result.mem.l1.misses, 8u);
  EXPECT_EQ(result.mem.dram.loads, 8u);
}

TEST(SmBehaviorTest, OccupancyOneSerializesBlocks) {
  // A kernel whose shared memory allows one resident block: blocks run one
  // after another, so cycles scale ~linearly with block count.
  KernelInfo k = one_warp_kernel();
  k.shared_mem_per_block = 49152;  // the whole SM
  BlockTrace trace;
  trace.warps = {{make_inst(Op::kIntAlu), make_inst(Op::kIntAlu),
                  make_inst(Op::kExit)}};
  const GpuConfig config = one_sm_config();
  const LaunchResult one =
      GpuSimulator(config).run_launch(FixedTrace(k, 1, trace));
  const LaunchResult four =
      GpuSimulator(config).run_launch(FixedTrace(k, 4, trace));
  EXPECT_EQ(four.sm_occupancy, 1u);
  EXPECT_GE(four.cycles, one.cycles * 3);
}

/// A launch whose blocks each run their own hand-written warp streams.
class VaryingTrace final : public trace::LaunchTraceSource {
 public:
  VaryingTrace(KernelInfo kernel, std::vector<BlockTrace> traces)
      : kernel_(std::move(kernel)), traces_(std::move(traces)) {}

  [[nodiscard]] const KernelInfo& kernel() const override { return kernel_; }
  [[nodiscard]] std::uint32_t n_blocks() const override {
    return static_cast<std::uint32_t>(traces_.size());
  }
  [[nodiscard]] BlockTrace block_trace(std::uint32_t block_id) const override {
    return traces_[block_id];
  }

 private:
  KernelInfo kernel_;
  std::vector<BlockTrace> traces_;
};

// Regression: the GTO greedy cursor must not survive block retirement.  The
// old scheduler left gto_current_ pointing at the retired block's warp; when
// a new block was dispatched into the reused slot, the stale cursor made the
// scheduler "greedily" issue the brand-new block's warp ahead of an older
// block's equally-ready warp — inverting the Oldest tie-break.
//
// Hand-trace (int_alu=8, sfu=20, one warp per block, occupancy 2):
//   cycle 0: B0.alu (oldest)        cycle 1: B1.alu
//   cycle 8: B0.exit -> B0 retires with the greedy cursor on slot 0
//   cycle 9: B2 dispatched into slot 0; B1's warp is also ready (1+8).
//     fixed:   cursor invalidated -> Oldest picks B1.sfu at 9 (exit at 29)
//     pre-fix: stale cursor greedy-issues B2.alu at 9, pushing B1.sfu to 10
// B1's sfu->exit chain is the critical path, so the one-cycle inversion
// reaches the launch total: 30 cycles fixed, 31 with the stale cursor.
TEST(SmBehaviorTest, GtoCursorDoesNotFollowSlotReuse) {
  KernelInfo k = one_warp_kernel();
  k.shared_mem_per_block = 24576;  // half the SM: exactly two resident blocks
  BlockTrace short_block;          // B0, B2
  short_block.warps = {{make_inst(Op::kIntAlu), make_inst(Op::kExit)}};
  BlockTrace sfu_block;            // B1: the critical path
  sfu_block.warps = {{make_inst(Op::kIntAlu), make_inst(Op::kSfu),
                      make_inst(Op::kExit)}};
  GpuConfig config = one_sm_config();
  config.scheduler = WarpScheduler::kGreedyThenOldest;
  const LaunchResult result = GpuSimulator(config).run_launch(
      VaryingTrace(k, {short_block, sfu_block, short_block}));
  EXPECT_EQ(result.sm_occupancy, 2u);
  EXPECT_EQ(result.cycles, 30u);
}

TEST(SmBehaviorTest, WideBlocksUseAllWarpContexts) {
  KernelInfo k = one_warp_kernel();
  k.threads_per_block = 1024;  // 32 warps
  BlockTrace trace;
  trace.warps.assign(32, {make_inst(Op::kIntAlu), make_inst(Op::kExit)});
  const LaunchResult result =
      GpuSimulator(one_sm_config()).run_launch(FixedTrace(k, 2, trace));
  EXPECT_EQ(result.sim_warp_insts, 2u * 32u * 2u);
  EXPECT_EQ(result.sm_occupancy, 1u);  // 1536 threads cap
}

}  // namespace
}  // namespace tbp::sim
