// Observation-session tests against a real simulation: the pure-observer
// contract (attaching metrics/trace never changes a single simulated
// cycle), the per-SM stall-cycle accounting identity, and the sorted-key
// merge that makes exported files independent of registration order.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "sim/config.hpp"
#include "sim/gpu.hpp"
#include "trace/generator.hpp"

namespace tbp::obs {
namespace {

trace::BlockBehavior default_behavior() {
  trace::BlockBehavior b;
  b.loop_iterations = 4;
  b.alu_per_iteration = 3;
  b.mem_per_iteration = 1;
  b.stores_per_iteration = 1;
  b.lines_per_access = 2;
  b.pattern = trace::AddressPattern::kStreaming;
  return b;
}

trace::SyntheticLaunch make_launch(std::uint32_t n_blocks,
                                   std::uint64_t seed = 11) {
  const trace::BlockBehavior behavior = default_behavior();
  return trace::SyntheticLaunch(
      trace::make_synthetic_kernel_info("observation_test"), n_blocks, seed,
      [behavior](std::uint32_t) { return behavior; });
}

sim::GpuConfig small_config() {
  sim::GpuConfig config = sim::fermi_config();
  config.n_sms = 2;
  return config;
}

/// Runs the launch once unobserved and once with metrics+trace attached and
/// returns both results for field-by-field comparison.
struct ObservedPair {
  sim::LaunchResult plain;
  sim::LaunchResult observed;
  MetricsSnapshot metrics;
  std::vector<TraceEvent> trace;
};

ObservedPair run_pair(std::uint32_t n_blocks) {
  const trace::SyntheticLaunch launch = make_launch(n_blocks);
  const sim::GpuConfig config = small_config();

  ObservedPair pair;
  {
    sim::GpuSimulator simulator(config);
    pair.plain = simulator.run_launch(launch);
  }
  Observation session(/*metrics_on=*/true, /*trace_on=*/true);
  {
    sim::GpuSimulator simulator(config);
    sim::RunOptions options;
    options.observe = sim::LaunchObservation{
        .metrics = session.metrics_shard("launch/000000"),
        .trace = session.trace_buffer("launch/000000"),
        .pid = 1,
    };
    pair.observed = simulator.run_launch(launch, options);
  }
  pair.metrics = session.merged_metrics();
  pair.trace = session.merged_trace();
  return pair;
}

TEST(ObservationTest, ObservingNeverChangesTheSimulation) {
  const ObservedPair pair = run_pair(24);
  const sim::LaunchResult& a = pair.plain;
  const sim::LaunchResult& b = pair.observed;

  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.sim_warp_insts, b.sim_warp_insts);
  EXPECT_EQ(a.sim_thread_insts, b.sim_thread_insts);
  ASSERT_EQ(a.per_sm.size(), b.per_sm.size());
  for (std::size_t s = 0; s < a.per_sm.size(); ++s) {
    EXPECT_EQ(a.per_sm[s].warp_insts, b.per_sm[s].warp_insts);
    EXPECT_EQ(a.per_sm[s].thread_insts, b.per_sm[s].thread_insts);
  }
  EXPECT_EQ(a.tb_units.size(), b.tb_units.size());
  EXPECT_EQ(a.fixed_units.size(), b.fixed_units.size());
  EXPECT_EQ(a.mem.l1.hits, b.mem.l1.hits);
  EXPECT_EQ(a.mem.l1.misses, b.mem.l1.misses);
  EXPECT_EQ(a.mem.l2.hits, b.mem.l2.hits);
  EXPECT_EQ(a.mem.l2.misses, b.mem.l2.misses);
  EXPECT_EQ(a.mem.dram.row_hits, b.mem.dram.row_hits);
  EXPECT_EQ(a.mem.dram.row_misses, b.mem.dram.row_misses);
}

TEST(ObservationTest, StallCyclesAccountForEveryCycle) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  const ObservedPair pair = run_pair(24);
  const sim::GpuConfig config = small_config();

  // Per SM: issued + every stall cause == launch cycles.  The accounting
  // classifies each cycle into exactly one bucket, so the breakdown must
  // tile the launch with no gap and no double counting.
  for (std::uint32_t s = 0; s < config.n_sms; ++s) {
    char prefix[32];
    std::snprintf(prefix, sizeof prefix, "sim.sm.%02u.", s);
    const std::string p(prefix);
    std::uint64_t accounted = pair.metrics.counter(p + "issued_cycles").value_or(0);
    for (const char* cause :
         {"memory", "scoreboard", "barrier", "idle", "wedged", "other"}) {
      accounted +=
          pair.metrics.counter(p + "stall." + cause).value_or(0);
    }
    EXPECT_EQ(accounted, pair.observed.cycles) << "SM " << s;
  }

  // Cache counters mirror the LaunchResult's own memory stats.
  EXPECT_EQ(pair.metrics.counter("sim.l1.hits"), pair.observed.mem.l1.hits);
  EXPECT_EQ(pair.metrics.counter("sim.l1.misses"), pair.observed.mem.l1.misses);
  EXPECT_EQ(pair.metrics.counter("sim.l2.hits"), pair.observed.mem.l2.hits);
  EXPECT_EQ(pair.metrics.counter("sim.dram.row_hits"),
            pair.observed.mem.dram.row_hits);
  EXPECT_EQ(pair.metrics.counter("sim.launch.cycles"), pair.observed.cycles);
  EXPECT_EQ(pair.metrics.counter("sim.launch.warp_insts"),
            pair.observed.sim_warp_insts);

  // The FR-FCFS queue-depth histogram saw one sample per scheduling
  // decision.
  const Histogram* depth = pair.metrics.histogram_named("sim.dram.queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->total(),
            pair.metrics.counter("sim.dram.scheduling_decisions").value_or(0));
}

TEST(ObservationTest, MshrPressureCountersAreExported) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  // Starved MSHR pools at both levels: every counter in the export must
  // mirror the LaunchResult's own stats, and the scenario must actually
  // produce pressure (nonzero) for the mirror check to mean anything.
  const trace::SyntheticLaunch launch = make_launch(24);
  sim::GpuConfig config = small_config();
  config.l1_mshrs = 1;
  config.l2_mshrs = 1;

  Observation session(/*metrics_on=*/true, /*trace_on=*/false);
  sim::GpuSimulator simulator(config);
  sim::RunOptions options;
  options.observe = sim::LaunchObservation{
      .metrics = session.metrics_shard("launch/000000"),
      .trace = nullptr,
      .pid = 1,
  };
  const sim::LaunchResult result = simulator.run_launch(launch, options);
  const MetricsSnapshot metrics = session.merged_metrics();

  EXPECT_GT(result.mem.l1_mshr_stalls, 0u);
  EXPECT_GT(result.mem.l2_mshr_overflows, 0u);
  EXPECT_EQ(metrics.counter("sim.l1.mshr_stalls"), result.mem.l1_mshr_stalls);
  EXPECT_EQ(metrics.counter("sim.l1.mshr_merges"), result.mem.l1_mshr_merges);
  EXPECT_EQ(metrics.counter("sim.l2.mshr_stalls"), result.mem.l2_mshr_overflows);
  EXPECT_EQ(metrics.counter("sim.l2.mshr_merges"), result.mem.l2_mshr_merges);
}

TEST(ObservationTest, TraceCoversEveryBlock) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  const std::uint32_t n_blocks = 24;
  const ObservedPair pair = run_pair(n_blocks);

  std::uint64_t tb_spans = 0;
  for (const TraceEvent& e : pair.trace) {
    if (e.ph == 'X' && e.cat == "tb") {
      ++tb_spans;
      EXPECT_LE(e.ts + e.dur, pair.observed.cycles);
    }
  }
  EXPECT_EQ(tb_spans, n_blocks);
}

TEST(ObservationTest, MergeIsIndependentOfRegistrationOrder) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  auto record = [](Observation& session, const std::vector<std::string>& keys) {
    // Per-key deltas derived from the key so shards differ.
    for (const std::string& key : keys) {
      MetricsShard* shard = session.metrics_shard(key);
      ASSERT_NE(shard, nullptr);
      shard->add("events", key.size());
      shard->add("key." + key, 1);
      TraceBuffer* buffer = session.trace_buffer(key);
      ASSERT_NE(buffer, nullptr);
      buffer->instant(key, "test", 0, 0, key.size());
    }
  };

  Observation forward(true, true);
  record(forward, {"a/000000", "a/000001", "b/000000"});
  Observation reverse(true, true);
  record(reverse, {"b/000000", "a/000001", "a/000000"});

  EXPECT_EQ(metrics_to_json(forward.merged_metrics()),
            metrics_to_json(reverse.merged_metrics()));

  std::ostringstream fwd_doc;
  std::ostringstream rev_doc;
  write_chrome_trace(forward.merged_trace(), fwd_doc);
  write_chrome_trace(reverse.merged_trace(), rev_doc);
  EXPECT_EQ(fwd_doc.str(), rev_doc.str());

  // Prefix filtering selects exactly the matching shards.
  const MetricsSnapshot only_a = forward.merged_metrics("a/");
  EXPECT_EQ(only_a.counter("key.a/000000"), std::uint64_t{1});
  EXPECT_EQ(only_a.counter("key.b/000000"), std::nullopt);
}

TEST(ObservationTest, DisabledSessionHandsOutNulls) {
  Observation off(false, false);
  EXPECT_EQ(off.metrics_shard("k"), nullptr);
  EXPECT_EQ(off.trace_buffer("k"), nullptr);
  EXPECT_TRUE(off.merged_metrics().counters.empty());
  EXPECT_TRUE(off.merged_trace().empty());

  Observation metrics_only(true, false);
  if (kEnabled) {
    EXPECT_NE(metrics_only.metrics_shard("k"), nullptr);
  } else {
    EXPECT_EQ(metrics_only.metrics_shard("k"), nullptr);
  }
  EXPECT_EQ(metrics_only.trace_buffer("k"), nullptr);
}

TEST(ObservationTest, FileWritersProduceTheInMemoryDocuments) {
  Observation session(true, true);
  // Works in the disabled build too: the snapshot and event list are just
  // empty, and the writers still emit valid (empty) documents.
  if (MetricsShard* shard = session.metrics_shard("k")) shard->add("c", 3);
  if (TraceBuffer* buffer = session.trace_buffer("k")) {
    buffer->instant("mark", "test", 0, 0, 1);
  }

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "tbp_observation_test";
  std::filesystem::create_directories(dir);
  const std::string metrics_path = (dir / "metrics.json").string();
  const std::string trace_path = (dir / "trace.json").string();

  const MetricsSnapshot snapshot = session.merged_metrics();
  ASSERT_TRUE(write_metrics_file(snapshot, metrics_path).ok());
  const std::vector<TraceEvent> events = session.merged_trace();
  ASSERT_TRUE(write_trace_file(events, trace_path).ok());

  auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream contents;
    contents << in.rdbuf();
    return contents.str();
  };
  EXPECT_EQ(slurp(metrics_path), metrics_to_json(snapshot));
  std::ostringstream trace_doc;
  write_chrome_trace(events, trace_doc);
  EXPECT_EQ(slurp(trace_path), trace_doc.str());

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tbp::obs
