// Observability extensions of the determinism contract (tests/harness/
// parallel_test.cpp): the merged metrics/trace exports are bit-identical
// for every --jobs value, and turning observation on does not perturb a
// single byte of the experiment artifacts (rows, CSV).  Runs under the
// `parallel` ctest label so the TSan tree exercises the shard registry's
// locking too.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "harness/csv.hpp"
#include "harness/experiment.hpp"
#include "obs/export.hpp"
#include "sim/config.hpp"
#include "support/parallel.hpp"
#include "workloads/workload.hpp"

namespace tbp::obs {
namespace {

harness::ComparisonOptions small_options(std::size_t jobs,
                                         Observation* observe) {
  harness::ComparisonOptions options;
  options.target_units = 60;
  options.jobs = jobs;
  options.observe = observe;
  return options;
}

sim::GpuConfig small_config() {
  sim::GpuConfig config = sim::fermi_config();
  config.n_sms = 4;
  return config;
}

workloads::Workload small_workload() {
  workloads::WorkloadScale scale;
  scale.divisor = 32;
  return workloads::make_workload("stream", scale);
}

/// CSV rendering with the wall-clock timing fields zeroed: everything else
/// is covered by the determinism contract.
std::string deterministic_csv(std::vector<harness::ExperimentRow> rows) {
  for (harness::ExperimentRow& row : rows) {
    row.full_sim_seconds = 0.0;
    row.tbp_seconds = 0.0;
  }
  std::ostringstream out;
  harness::write_rows_csv(rows, out);
  return out.str();
}

TEST(ObsDeterminismTest, ExportsAreBitIdenticalAcrossJobs) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  par::set_global_jobs(8);
  const workloads::Workload workload = small_workload();
  const sim::GpuConfig config = small_config();

  Observation serial_session(/*metrics_on=*/true, /*trace_on=*/true);
  const harness::ExperimentRow serial = harness::run_comparison(
      workload, config, small_options(1, &serial_session));

  Observation parallel_session(/*metrics_on=*/true, /*trace_on=*/true);
  const harness::ExperimentRow parallel = harness::run_comparison(
      workload, config, small_options(8, &parallel_session));

  // The rows themselves agree (the existing contract)...
  EXPECT_EQ(serial.full_ipc, parallel.full_ipc);
  EXPECT_EQ(serial.tbpoint.ipc, parallel.tbpoint.ipc);

  // ...and so do the exported observability documents: shards are keyed by
  // task identity and merged in sorted key order, so completion order never
  // shows through.
  const std::string serial_metrics =
      metrics_to_json(serial_session.merged_metrics());
  const std::string parallel_metrics =
      metrics_to_json(parallel_session.merged_metrics());
  EXPECT_EQ(serial_metrics, parallel_metrics);
  EXPECT_NE(serial_metrics.find("sim.sm.00.issued_cycles"), std::string::npos);
  EXPECT_NE(serial_metrics.find("core.sampler.warm_units"), std::string::npos);

  std::ostringstream serial_trace;
  std::ostringstream parallel_trace;
  write_chrome_trace(serial_session.merged_trace(), serial_trace);
  write_chrome_trace(parallel_session.merged_trace(), parallel_trace);
  EXPECT_EQ(serial_trace.str(), parallel_trace.str());
  EXPECT_FALSE(serial_session.merged_trace().empty());

  // The row carries the same snapshot the session merges to.
  EXPECT_EQ(metrics_to_json(serial.metrics),
            metrics_to_json(serial_session.merged_metrics(workload.name + "/")));
}

TEST(ObsDeterminismTest, ObservationOnOrOffSameArtifacts) {
  par::set_global_jobs(8);
  const workloads::Workload workload = small_workload();
  const sim::GpuConfig config = small_config();

  const harness::ExperimentRow unobserved =
      harness::run_comparison(workload, config, small_options(4, nullptr));

  Observation session(/*metrics_on=*/true, /*trace_on=*/true);
  const harness::ExperimentRow observed =
      harness::run_comparison(workload, config, small_options(4, &session));

  // Metrics are pure observers: every deterministic row field — and hence
  // the CSV artifact — is byte-identical with observation on or off.
  EXPECT_EQ(unobserved.full_ipc, observed.full_ipc);
  EXPECT_EQ(unobserved.random.ipc, observed.random.ipc);
  EXPECT_EQ(unobserved.simpoint.ipc, observed.simpoint.ipc);
  EXPECT_EQ(unobserved.systematic.ipc, observed.systematic.ipc);
  EXPECT_EQ(unobserved.tbpoint.ipc, observed.tbpoint.ipc);
  EXPECT_EQ(unobserved.inter_skip_share, observed.inter_skip_share);
  EXPECT_EQ(unobserved.tbp_clusters, observed.tbp_clusters);
  EXPECT_EQ(unobserved.unit_insts, observed.unit_insts);
  EXPECT_EQ(deterministic_csv({unobserved}), deterministic_csv({observed}));

  // The only difference is the attached snapshot.
  EXPECT_TRUE(unobserved.metrics.counters.empty());
  if (kEnabled) {
    EXPECT_FALSE(observed.metrics.counters.empty());
  }
}

TEST(ObsDeterminismTest, ConcurrentShardRegistrationIsSafe) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  // Many tasks asking the session for distinct shards concurrently (the
  // run_comparison pattern) must neither race nor lose shards.  Under the
  // TSan tree this is the locking proof for the registry.
  Observation session(/*metrics_on=*/true, /*trace_on=*/true);
  constexpr std::size_t kTasks = 64;
  par::set_global_jobs(8);
  par::parallel_for(kTasks, 8, [&](std::size_t i) {
    const std::string key = "task/" + key_index(i);
    MetricsShard* shard = session.metrics_shard(key);
    TraceBuffer* buffer = session.trace_buffer(key);
    ASSERT_NE(shard, nullptr);
    ASSERT_NE(buffer, nullptr);
    shard->add("ticks", i + 1);
    buffer->instant("tick", "test", 0, 0, i);
  });
  const MetricsSnapshot snapshot = session.merged_metrics();
  // sum of 1..kTasks
  EXPECT_EQ(snapshot.counter("ticks"), std::uint64_t{kTasks * (kTasks + 1) / 2});
  EXPECT_EQ(session.merged_trace().size(), kTasks);
}

}  // namespace
}  // namespace tbp::obs
