// Unit tests for the chrome://tracing exporter: JSON literal rendering
// (escaping happens exactly once, at argument-build time), buffer event
// construction, and the shape of the emitted document.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "obs/trace_event.hpp"

namespace tbp::obs {
namespace {

TEST(JsonLiteralTest, Numbers) {
  EXPECT_EQ(json_number(std::uint64_t{0}), "0");
  EXPECT_EQ(json_number(std::uint64_t{18446744073709551615u}),
            "18446744073709551615");
  // Doubles render round-trippably; spot-check a simple value.
  const std::string half = json_number(0.5);
  EXPECT_EQ(std::stod(half), 0.5);
}

TEST(JsonLiteralTest, StringEscaping) {
  EXPECT_EQ(json_string("plain"), "\"plain\"");
  EXPECT_EQ(json_string("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(json_string("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_string("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(json_string("tab\there"), "\"tab\\there\"");
  // Control characters below 0x20 must be escaped (\u00XX form), never
  // emitted raw — raw control bytes make the document invalid JSON.
  const std::string ctl = json_string(std::string("x\x01y", 3));
  EXPECT_EQ(ctl.find('\x01'), std::string::npos);
  EXPECT_NE(ctl.find("\\u0001"), std::string::npos);
}

TEST(TraceBufferTest, BuildsEventKinds) {
  TraceBuffer buffer;
  buffer.process_name(7, "launch 7");
  buffer.thread_name(7, 2, "SM 2");
  buffer.complete("TB 5", "tb", 7, 2, 100, 40,
                  {{"block", json_number(std::uint64_t{5})}});
  buffer.instant("fixed-unit 0", "unit", 7, 3, 140);

  ASSERT_EQ(buffer.events().size(), 4u);
  EXPECT_FALSE(buffer.empty());

  const TraceEvent& meta = buffer.events()[0];
  EXPECT_EQ(meta.ph, 'M');
  EXPECT_EQ(meta.pid, 7u);

  const TraceEvent& span = buffer.events()[2];
  EXPECT_EQ(span.ph, 'X');
  EXPECT_EQ(span.name, "TB 5");
  EXPECT_EQ(span.cat, "tb");
  EXPECT_EQ(span.tid, 2u);
  EXPECT_EQ(span.ts, 100u);
  EXPECT_EQ(span.dur, 40u);
  ASSERT_EQ(span.args.size(), 1u);
  EXPECT_EQ(span.args[0].first, "block");
  EXPECT_EQ(span.args[0].second, "5");

  const TraceEvent& mark = buffer.events()[3];
  EXPECT_EQ(mark.ph, 'i');
  EXPECT_EQ(mark.ts, 140u);
}

TEST(ChromeTraceTest, DocumentShape) {
  TraceBuffer buffer;
  buffer.process_name(1, "full launch 0");
  buffer.thread_name(1, 0, "SM 0");
  buffer.complete("TB \"0\"", "tb", 1, 0, 10, 5);
  buffer.instant("fixed-unit 0", "unit", 1, 4, 15);

  std::ostringstream out;
  write_chrome_trace(buffer.events(), out);
  const std::string doc = out.str();

  // Top-level JSON object with the traceEvents array the viewers expect.
  EXPECT_EQ(doc.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(doc.back(), '\n');
  // Every event kind made it through, and the complete event carries dur.
  EXPECT_NE(doc.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(doc.find("\"dur\":5"), std::string::npos);
  // The quoted name was escaped exactly once.
  EXPECT_NE(doc.find("TB \\\"0\\\""), std::string::npos);
  EXPECT_EQ(doc.find("TB \"0\""), std::string::npos);

  // Balanced brackets is a cheap proxy for well-formedness given the repo
  // has no JSON parser to round-trip through.
  std::ptrdiff_t braces = 0;
  std::ptrdiff_t brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const char c = doc[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ChromeTraceTest, EmptyEventListIsStillADocument) {
  std::ostringstream out;
  write_chrome_trace({}, out);
  const std::string doc = out.str();
  EXPECT_EQ(doc.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(doc.find("]"), std::string::npos);
  EXPECT_EQ(doc.find("\"ph\""), std::string::npos);  // no events
}

}  // namespace
}  // namespace tbp::obs
