// Unit tests for the metrics registry primitives: histogram bucketing and
// merge semantics, shard counter/histogram accumulation, and the
// deterministic snapshot merge the --jobs contract leans on.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace tbp::obs {
namespace {

TEST(HistogramTest, BucketsValuesByUpperBound) {
  Histogram h({10, 100, 1000});
  ASSERT_EQ(h.counts().size(), 4u);  // 3 bounds + overflow

  h.record(0);     // <= 10
  h.record(10);    // <= 10 (bounds are inclusive)
  h.record(11);    // <= 100
  h.record(100);   // <= 100
  h.record(101);   // <= 1000
  h.record(1000);  // <= 1000
  h.record(1001);  // overflow

  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 2u);
  EXPECT_EQ(h.counts()[2], 2u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(HistogramTest, MergeSumsBucketwise) {
  Histogram a({4, 16});
  Histogram b({4, 16});
  a.record(1);
  a.record(100);
  b.record(1);
  b.record(8);

  ASSERT_TRUE(a.merge(b));
  EXPECT_EQ(a.counts()[0], 2u);
  EXPECT_EQ(a.counts()[1], 1u);
  EXPECT_EQ(a.counts()[2], 1u);
  EXPECT_EQ(a.total(), 4u);
}

TEST(HistogramTest, MergeRejectsMismatchedBounds) {
  Histogram a({4, 16});
  Histogram b({4, 32});
  a.record(1);
  b.record(1);
  EXPECT_FALSE(a.merge(b));
  // Nothing was merged.
  EXPECT_EQ(a.total(), 1u);
}

TEST(MetricsShardTest, CountersAccumulate) {
  MetricsShard shard;
  shard.add("a", 1);
  shard.add("b", 10);
  shard.add("a", 2);
  ASSERT_EQ(shard.counters().size(), 2u);
  EXPECT_EQ(shard.counters().at("a"), 3u);
  EXPECT_EQ(shard.counters().at("b"), 10u);
}

TEST(MetricsShardTest, HistogramPointerIsStable) {
  MetricsShard shard;
  const std::uint64_t bounds[] = {1, 2, 4};
  Histogram* first = shard.histogram("depth", bounds);
  ASSERT_NE(first, nullptr);
  first->record(3);
  // Creating unrelated entries must not invalidate the pointer (hot loops
  // hold it for the whole launch).
  for (int i = 0; i < 64; ++i) {
    shard.add("counter." + std::to_string(i), 1);
    (void)shard.histogram("hist." + std::to_string(i), bounds);
  }
  Histogram* again = shard.histogram("depth", bounds);
  EXPECT_EQ(first, again);
  EXPECT_EQ(again->total(), 1u);
}

TEST(MetricsSnapshotTest, AbsorbMergesShards) {
  const std::uint64_t bounds[] = {8, 64};
  MetricsShard s1;
  s1.add("shared", 5);
  s1.add("only_first", 1);
  s1.histogram("h", bounds)->record(3);

  MetricsShard s2;
  s2.add("shared", 7);
  s2.histogram("h", bounds)->record(100);

  MetricsSnapshot snap;
  snap.absorb(s1);
  snap.absorb(s2);

  EXPECT_EQ(snap.counter("shared"), std::uint64_t{12});
  EXPECT_EQ(snap.counter("only_first"), std::uint64_t{1});
  EXPECT_EQ(snap.counter("missing"), std::nullopt);

  const Histogram* h = snap.histogram_named("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->total(), 2u);
  EXPECT_EQ(h->counts()[0], 1u);
  EXPECT_EQ(h->counts()[2], 1u);  // overflow bucket
  EXPECT_EQ(snap.histogram_named("missing"), nullptr);
}

TEST(MetricsSnapshotTest, JsonIsSortedAndStable) {
  MetricsShard shard;
  shard.add("zeta", 1);
  shard.add("alpha", 2);
  const std::uint64_t bounds[] = {1};
  shard.histogram("h", bounds)->record(0);

  MetricsSnapshot snap;
  snap.absorb(shard);
  const std::string json = metrics_to_json(snap);
  // Sorted name order means equal snapshots render to equal bytes.
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"bounds\": [1]"), std::string::npos);
  EXPECT_NE(json.find("\"counts\": [1, 0]"), std::string::npos);

  // Absorbing the same shard into a fresh snapshot renders identically.
  MetricsSnapshot again;
  again.absorb(shard);
  EXPECT_EQ(metrics_to_json(again), json);
}

TEST(KeyIndexTest, ZeroPaddedKeysSortNumerically) {
  EXPECT_EQ(key_index(0), "000000");
  EXPECT_EQ(key_index(3), "000003");
  EXPECT_EQ(key_index(42), "000042");
  EXPECT_LT(key_index(9), key_index(10));   // string order == numeric order
  EXPECT_LT(key_index(99), key_index(100));
}

}  // namespace
}  // namespace tbp::obs
