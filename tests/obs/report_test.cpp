// The deterministic JSON layer behind manifests: canonical serialization,
// strict parsing, and the CRC seal's corruption detection.
#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "support/checksum.hpp"

namespace tbp::obs {
namespace {

JsonValue sample_body() {
  JsonValue body = JsonValue::object();
  body.set("zeta", 1.5);
  body.set("alpha", std::uint64_t{42});
  body.set("name", "tbp");
  JsonValue arr = JsonValue::array();
  arr.items().push_back(JsonValue(true));
  arr.items().push_back(JsonValue(nullptr));
  arr.items().push_back(JsonValue(std::int64_t{-7}));
  body.set("list", std::move(arr));
  JsonValue nested = JsonValue::object();
  nested.set("wall_seconds", 0.125);
  body.set("inner", std::move(nested));
  return body;
}

TEST(JsonTest, SerializeSortsKeysAndOmitsWhitespace) {
  EXPECT_EQ(json_serialize(sample_body()),
            "{\"alpha\":42,\"inner\":{\"wall_seconds\":0.125},"
            "\"list\":[true,null,-7],\"name\":\"tbp\",\"zeta\":1.5}");
}

TEST(JsonTest, ParseSerializeIsIdentityOnCanonicalText) {
  const std::string canonical = json_serialize(sample_body());
  Result<JsonValue> parsed = json_parse(canonical);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(json_serialize(*parsed), canonical);
}

TEST(JsonTest, DoublesRoundTripBitExactly) {
  for (const double d : {0.1, 1.0 / 3.0, 1e-30, 6.02214076e23, 12345.678,
                         -0.0078125, 2.0}) {
    JsonValue v(d);
    const std::string text = json_serialize(v);
    Result<JsonValue> parsed = json_parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed->as_double(), d) << text;
    // Re-serializing the parsed value reproduces the bytes (what the CRC
    // seal relies on).
    EXPECT_EQ(json_serialize(*parsed), text);
  }
}

TEST(JsonTest, NonFiniteDoublesSerializeAsNull) {
  EXPECT_EQ(json_serialize(JsonValue(std::nan(""))), "null");
}

TEST(JsonTest, NegativeZeroIsCanonicalizedToZero) {
  // "-0" would reparse as integer 0 and change the serialized bytes, which
  // the CRC seal cannot tolerate (signed error components hit -0.0 easily).
  EXPECT_EQ(json_serialize(JsonValue(-0.0)), "0");
  JsonValue body = JsonValue::object();
  body.set("warmup_pct", -0.0);
  const std::string sealed = json_serialize(seal_json("tbp-test-v1", body));
  EXPECT_TRUE(open_json(sealed, "tbp-test-v1").ok());
}

TEST(JsonTest, StringEscapesRoundTrip) {
  const std::string awkward = "a\"b\\c\nd\te\x01f";
  JsonValue v(awkward);
  Result<JsonValue> parsed = json_parse(json_serialize(v));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->as_string(), awkward);
}

TEST(JsonTest, ParserHandlesUnicodeEscapes) {
  Result<JsonValue> parsed = json_parse("\"\\u0041\\u00e9\\ud83d\\ude00\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->as_string(), "A\xC3\xA9\xF0\x9F\x98\x80");
  EXPECT_FALSE(json_parse("\"\\ud83d\"").ok());  // unpaired surrogate
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(json_parse("").ok());
  EXPECT_FALSE(json_parse("{\"a\":1,}").ok());
  EXPECT_FALSE(json_parse("[1 2]").ok());
  EXPECT_FALSE(json_parse("{\"a\":1} garbage").ok());
  EXPECT_FALSE(json_parse("\"unterminated").ok());
  EXPECT_FALSE(json_parse("01e").ok());
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  EXPECT_FALSE(json_parse(deep).ok());
}

TEST(JsonTest, IntegersKeepFullPrecision) {
  const std::uint64_t big = 18446744073709551615ull;  // > 2^53
  Result<JsonValue> parsed = json_parse(json_serialize(JsonValue(big)));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->as_u64(), big);
  Result<JsonValue> negative = json_parse("-9007199254740995");
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(json_serialize(*negative), "-9007199254740995");
}

TEST(SealTest, SealOpenRoundTrips) {
  const JsonValue sealed = seal_json(kManifestSchema, sample_body());
  const std::string text = json_serialize_pretty(sealed);
  Result<JsonValue> body = open_json(text, kManifestSchema);
  ASSERT_TRUE(body.ok()) << body.status().to_string();
  EXPECT_EQ(json_serialize(*body), json_serialize(sample_body()));
}

TEST(SealTest, WrongSchemaIsVersionMismatch) {
  const std::string text =
      json_serialize(seal_json(kManifestSchema, sample_body()));
  Result<JsonValue> body = open_json(text, kBenchPerfSchema);
  ASSERT_FALSE(body.ok());
  EXPECT_EQ(body.status().code(), StatusCode::kVersionMismatch);
}

TEST(SealTest, BitFlipInBodyIsCorrupt) {
  std::string text = json_serialize(seal_json(kManifestSchema, sample_body()));
  const std::size_t digit = text.find("42");
  ASSERT_NE(digit, std::string::npos);
  text[digit] = '9';
  Result<JsonValue> body = open_json(text, kManifestSchema);
  ASSERT_FALSE(body.ok());
  EXPECT_EQ(body.status().code(), StatusCode::kCorrupt);
}

TEST(SealTest, TruncationIsCorrupt) {
  const std::string text =
      json_serialize(seal_json(kManifestSchema, sample_body()));
  for (const std::size_t keep : {text.size() / 2, text.size() - 1}) {
    Result<JsonValue> body = open_json(text.substr(0, keep), kManifestSchema);
    ASSERT_FALSE(body.ok()) << keep;
    EXPECT_EQ(body.status().code(), StatusCode::kCorrupt) << keep;
  }
}

TEST(SealTest, MissingEnvelopeMembersAreCorrupt) {
  Result<JsonValue> body = open_json("{\"schema\":\"tbp-manifest-v1\"}",
                                     kManifestSchema);
  ASSERT_FALSE(body.ok());
  EXPECT_EQ(body.status().code(), StatusCode::kCorrupt);
}

TEST(SealTest, PrettyAndCompactSealValidateIdentically) {
  // The CRC is over the canonical (compact) body serialization, so the
  // pretty-printed file validates too: parse -> re-serialize is canonical.
  const JsonValue sealed = seal_json(kBenchPerfSchema, sample_body());
  EXPECT_TRUE(open_json(json_serialize(sealed), kBenchPerfSchema).ok());
  EXPECT_TRUE(open_json(json_serialize_pretty(sealed), kBenchPerfSchema).ok());
}

TEST(MetricsToValueTest, MirrorsSnapshotSorted) {
  MetricsShard shard;
  shard.add("b.two", 2);
  shard.add("a.one", 1);
  MetricsSnapshot snapshot;
  snapshot.absorb(shard);
  const JsonValue v = metrics_to_value(snapshot);
  // Same in TBP_OBS=OFF builds: the shard/snapshot *data* APIs stay
  // functional (only recording call sites compile out), and tbp-report
  // must keep reading manifests either way.
  EXPECT_EQ(json_serialize(v),
            "{\"counters\":{\"a.one\":1,\"b.two\":2},\"histograms\":{}}");
}

}  // namespace
}  // namespace tbp::obs
