// Unit coverage for the profiling primitives: deterministic percentile
// estimates over fixed-bucket histograms, ShardSkew aggregation/merge
// algebra, ProfSession span accounting, the ScopedSpan bracket, and the
// sealed tbp-prof-v1 sidecar roundtrip (including the chrome-trace
// wall-clock track).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace_event.hpp"
#include "prof/prof.hpp"
#include "prof/sidecar.hpp"
#include "support/atomic_file.hpp"

namespace tbp::prof {
namespace {

TEST(ProfBucketsTest, BoundsAreStrictlyIncreasing) {
  const auto lat = latency_bounds();
  ASSERT_FALSE(lat.empty());
  EXPECT_EQ(lat.front(), 1u) << "first latency bucket is <= 1us";
  for (std::size_t i = 1; i < lat.size(); ++i) {
    EXPECT_LT(lat[i - 1], lat[i]);
  }
  const auto ratio = ratio_bounds();
  ASSERT_FALSE(ratio.empty());
  EXPECT_GE(ratio.front(), 1000u) << "1000 milli = perfectly balanced";
  for (std::size_t i = 1; i < ratio.size(); ++i) {
    EXPECT_LT(ratio[i - 1], ratio[i]);
  }
}

TEST(ProfPercentileTest, EmptyHistogramYieldsZero) {
  obs::Histogram hist({1, 2, 4});
  EXPECT_EQ(percentile_upper_bound(hist, 0.5), 0u);
  EXPECT_EQ(percentile_upper_bound(hist, 0.99), 0u);
}

TEST(ProfPercentileTest, PicksFirstBucketReachingTheRank) {
  obs::Histogram hist({10, 20, 40});
  // 6 values <= 10, 3 in (10, 20], 1 in (20, 40].
  for (int i = 0; i < 6; ++i) hist.record(5);
  for (int i = 0; i < 3; ++i) hist.record(15);
  hist.record(30);
  EXPECT_EQ(percentile_upper_bound(hist, 0.50), 10u);  // rank 5 of 10
  EXPECT_EQ(percentile_upper_bound(hist, 0.90), 20u);  // rank 9
  EXPECT_EQ(percentile_upper_bound(hist, 1.00), 40u);  // rank 10
}

TEST(ProfPercentileTest, OverflowValuesSaturateToLastBound) {
  obs::Histogram hist({10, 20});
  hist.record(1000);  // overflow bucket
  EXPECT_EQ(percentile_upper_bound(hist, 0.5), 20u)
      << "overflow saturates to the last bound, not infinity";
}

TEST(ShardSkewTest, NoteRoundAccumulatesBusyWaitAndRatios) {
  if (!kEnabled) GTEST_SKIP() << "profiling compiled out";
  ShardSkew skew;
  skew.n_workers = 2;
  skew.n_sms = 2;
  skew.worker_busy_seconds.assign(2, 0.0);
  skew.worker_wait_seconds.assign(2, 0.0);

  // Round 1: worker 0 busy 0.3s, worker 1 busy 0.1s, round wall 0.4s.
  const double round1[] = {0.3, 0.1};
  skew.note_round(round1, 0.4);
  // Round 2: perfectly balanced.
  const double round2[] = {0.2, 0.2};
  skew.note_round(round2, 0.25);

  EXPECT_EQ(skew.rounds, 2u);
  EXPECT_DOUBLE_EQ(skew.wall_seconds, 0.65);
  EXPECT_DOUBLE_EQ(skew.worker_busy_seconds[0], 0.5);
  EXPECT_DOUBLE_EQ(skew.worker_busy_seconds[1], 0.3);
  // Wait = round wall - own busy, accumulated per round.
  EXPECT_NEAR(skew.worker_wait_seconds[0], (0.4 - 0.3) + (0.25 - 0.2), 1e-12);
  EXPECT_NEAR(skew.worker_wait_seconds[1], (0.4 - 0.1) + (0.25 - 0.2), 1e-12);
  // Round 1 ratio: max 0.3 / mean 0.2 = 1.5; round 2 ratio: 1.0.
  EXPECT_NEAR(skew.max_imbalance_ratio, 1.5, 1e-12);
  EXPECT_NEAR(skew.mean_imbalance_ratio(), 1.25, 1e-12);
  EXPECT_EQ(skew.imbalance_samples, 2u);
  EXPECT_EQ(skew.imbalance_milli.total(), 2u);
  EXPECT_FALSE(skew.empty());
}

TEST(ShardSkewTest, MergeSumsAndGrowsToLargerGeometry) {
  ShardSkew a;
  a.n_workers = 1;
  a.n_sms = 2;
  a.rounds = 3;
  a.wall_seconds = 1.0;
  a.sm_busy_seconds = {0.5, 0.25};
  a.worker_busy_seconds = {0.75};
  a.worker_wait_seconds = {0.25};
  a.max_imbalance_ratio = 1.2;
  a.imbalance_ratio_sum = 3.3;
  a.imbalance_samples = 3;

  ShardSkew b;
  b.n_workers = 2;
  b.n_sms = 4;
  b.rounds = 1;
  b.wall_seconds = 0.5;
  b.sm_busy_seconds = {0.1, 0.1, 0.1, 0.1};
  b.worker_busy_seconds = {0.2, 0.2};
  b.worker_wait_seconds = {0.05, 0.05};
  b.max_imbalance_ratio = 2.0;
  b.imbalance_ratio_sum = 2.0;
  b.imbalance_samples = 1;

  a.merge(b);
  EXPECT_EQ(a.n_workers, 2u);
  EXPECT_EQ(a.n_sms, 4u);
  EXPECT_EQ(a.rounds, 4u);
  EXPECT_DOUBLE_EQ(a.wall_seconds, 1.5);
  ASSERT_EQ(a.sm_busy_seconds.size(), 4u);
  EXPECT_DOUBLE_EQ(a.sm_busy_seconds[0], 0.6);
  EXPECT_DOUBLE_EQ(a.sm_busy_seconds[3], 0.1);
  ASSERT_EQ(a.worker_busy_seconds.size(), 2u);
  EXPECT_DOUBLE_EQ(a.worker_busy_seconds[0], 0.95);
  EXPECT_DOUBLE_EQ(a.max_imbalance_ratio, 2.0);
  EXPECT_NEAR(a.mean_imbalance_ratio(), 5.3 / 4.0, 1e-12);
}

TEST(ProfSessionTest, SpansAggregateByNameWithPercentiles) {
  ProfSession session;
  if (!kEnabled) GTEST_SKIP() << "profiling compiled out";
  session.record_span("svc.sim", 0.0, 0.001);   // 1000us
  session.record_span("svc.sim", 0.0, 0.002);   // 2000us
  session.record_span("svc.gc", 0.0, 0.0001);   // 100us

  const auto spans = session.span_snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const ProfSession::SpanStats& sim = spans.at("svc.sim");
  EXPECT_EQ(sim.count, 2u);
  EXPECT_NEAR(sim.total_seconds, 0.003, 1e-12);
  EXPECT_EQ(sim.latency_us.total(), 2u);
  EXPECT_EQ(spans.at("svc.gc").count, 1u);

  const auto raw = session.raw_spans();
  ASSERT_EQ(raw.size(), 3u);
  EXPECT_EQ(raw[0].name, "svc.sim");
  EXPECT_EQ(raw[0].dur_us, 1000u);
}

TEST(ProfSessionTest, ScopedSpanRecordsOnceAndCancelDropsIt) {
  ProfSession session;
  if (!kEnabled) GTEST_SKIP() << "profiling compiled out";
  {
    ScopedSpan span(&session, "bracket");
    span.finish();
    span.finish();  // idempotent: destructor must not double-record
  }
  {
    ScopedSpan span(&session, "dropped");
    span.cancel();
  }
  ScopedSpan null_span(nullptr, "no-session");  // must be a safe no-op
  null_span.finish();

  const auto spans = session.span_snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans.at("bracket").count, 1u);
}

TEST(ProfSidecarTest, SealedRoundtripPreservesSkewAndSpans) {
  ProfSession session;
  if (!kEnabled) GTEST_SKIP() << "profiling compiled out";
  ShardSkew skew;
  skew.n_workers = 2;
  skew.n_sms = 4;
  skew.worker_busy_seconds.assign(2, 0.0);
  skew.worker_wait_seconds.assign(2, 0.0);
  skew.sm_busy_seconds = {0.1, 0.2, 0.3, 0.4};
  const double round[] = {0.6, 0.4};
  skew.note_round(round, 1.0);
  session.absorb_skew(skew);
  session.record_span("svc.sim", 0.0, 0.5);

  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "prof.json").string();
  ASSERT_TRUE(write_prof_sidecar(session, path).ok());

  const Result<std::string> bytes =
      io::read_file_limited(std::filesystem::path(path));
  ASSERT_TRUE(bytes.ok()) << bytes.status().to_string();
  const Result<obs::JsonValue> body = obs::open_json(*bytes, kProfSchema);
  ASSERT_TRUE(body.ok()) << body.status().to_string();

  const obs::JsonValue* skew_v = body->find("skew");
  ASSERT_NE(skew_v, nullptr);
  EXPECT_EQ(skew_v->find("rounds")->as_u64(), 1u);
  EXPECT_EQ(skew_v->find("n_workers")->as_u64(), 2u);
  EXPECT_EQ(skew_v->find("n_sms")->as_u64(), 4u);
  EXPECT_NEAR(skew_v->find("max_imbalance_ratio")->as_double(), 1.2, 1e-9);
  ASSERT_EQ(skew_v->find("sm_busy_seconds")->items().size(), 4u);

  const obs::JsonValue* spans = body->find("spans");
  ASSERT_NE(spans, nullptr);
  const obs::JsonValue* sim = spans->find("svc.sim");
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(sim->find("count")->as_u64(), 1u);
  EXPECT_NEAR(sim->find("total_seconds")->as_double(), 0.5, 1e-9);
  EXPECT_GT(sim->find("p99_seconds")->as_double(), 0.0);
}

TEST(ProfSidecarTest, WallClockTrackEmitsSpansUnderReservedPid) {
  ProfSession session;
  if (!kEnabled) GTEST_SKIP() << "profiling compiled out";
  session.record_span("a", 0.0, 0.001);
  session.record_span("b", 0.0, 0.002);

  obs::TraceBuffer buffer;
  append_wall_clock_track(session, &buffer);
  ASSERT_FALSE(buffer.empty());
  bool saw_span = false;
  for (const obs::TraceEvent& event : buffer.events()) {
    EXPECT_EQ(event.pid, kWallClockTracePid);
    if (event.name == "a" || event.name == "b") saw_span = true;
  }
  EXPECT_TRUE(saw_span);

  obs::TraceBuffer empty_buffer;
  const ProfSession empty_session;
  append_wall_clock_track(empty_session, &empty_buffer);
  EXPECT_TRUE(empty_buffer.empty()) << "empty session must add no track";
}

}  // namespace
}  // namespace tbp::prof
