// The profiling quarantine contract, end to end: attaching a ProfSession
// to a sharded comparison changes NOTHING in the experiment artifacts —
// the manifest bytes are identical with profiling attached, detached, or
// compiled out — while the session itself fills with real skew and span
// data.  This is the test-side half of the guarantee; the CI prof jobs pin
// the same property at the binary level (fig9 --prof vs not, cmp).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "harness/experiment.hpp"
#include "harness/manifest.hpp"
#include "obs/report.hpp"
#include "prof/prof.hpp"
#include "sim/config.hpp"
#include "support/atomic_file.hpp"
#include "support/parallel.hpp"
#include "workloads/workload.hpp"

namespace tbp::prof {
namespace {

sim::GpuConfig small_config() {
  sim::GpuConfig config = sim::fermi_config();
  config.n_sms = 4;
  return config;
}

workloads::Workload small_workload() {
  workloads::WorkloadScale scale;
  scale.divisor = 32;
  return workloads::make_workload("stream", scale);
}

/// Runs the sharded four-way comparison with an optional prof session and
/// writes its manifest; returns the file's bytes.
std::string manifest_bytes(ProfSession* session, const std::string& path) {
  par::set_global_jobs(4);
  harness::ComparisonOptions options;
  options.target_units = 60;
  options.sim_jobs = 2;
  options.prof = session;
  const harness::ExperimentRow row =
      harness::run_comparison(small_workload(), small_config(), options);
  obs::JsonValue config_value = obs::JsonValue::object();
  config_value.set("workload", std::string("stream"));
  const obs::JsonValue body = harness::manifest_body(
      "test", "quarantine", config_value, {&row, 1}, obs::MetricsSnapshot{});
  EXPECT_TRUE(harness::write_manifest(body, path).ok());
  const Result<std::string> bytes =
      io::read_file_limited(std::filesystem::path(path));
  EXPECT_TRUE(bytes.ok()) << bytes.status().to_string();
  return bytes.ok() ? *bytes : std::string();
}

TEST(ProfQuarantineTest, ManifestBytesIdenticalWithAndWithoutProfiling) {
  const std::string dir = ::testing::TempDir();
  ProfSession session;
  const std::string with_prof =
      manifest_bytes(&session, dir + "/manifest_prof.json");
  const std::string without_prof =
      manifest_bytes(nullptr, dir + "/manifest_noprof.json");
  ASSERT_FALSE(with_prof.empty());
  EXPECT_EQ(with_prof, without_prof)
      << "a ProfSession must be a pure observer: identical manifests";

  // And no wall-clock field leaked into the body at all.
  EXPECT_EQ(with_prof.find("seconds"), std::string::npos)
      << "wall-clock fields belong in the tbp-prof-v1 sidecar";
}

TEST(ProfQuarantineTest, AttachedSessionCollectsShardSkew) {
  if (!kEnabled) GTEST_SKIP() << "profiling compiled out";
  const std::string dir = ::testing::TempDir();
  ProfSession session;
  ASSERT_FALSE(manifest_bytes(&session, dir + "/manifest_skew.json").empty());

  const ShardSkew skew = session.skew_snapshot();
  EXPECT_FALSE(skew.empty()) << "sim_jobs=2 must record shard rounds";
  EXPECT_EQ(skew.n_workers, 2u);
  EXPECT_EQ(skew.n_sms, 4u);
  EXPECT_GT(skew.rounds, 0u);
  EXPECT_GT(skew.wall_seconds, 0.0);
  EXPECT_GE(skew.max_imbalance_ratio, 1.0)
      << "max/mean busy is >= 1 by construction whenever a round ran";
  ASSERT_EQ(skew.worker_busy_seconds.size(), 2u);
  ASSERT_EQ(skew.sm_busy_seconds.size(), 4u);
}

}  // namespace
}  // namespace tbp::prof
