// tbp-report's exit-code contract, driven in-process through the same
// command functions the binary wraps: corrupt or truncated manifests exit 2
// with a diagnostic (never crash), regressions past --max-regress exit 1,
// clean comparisons exit 0.
#include "report_lib.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "harness/faults.hpp"
#include "obs/report.hpp"
#include "prof/sidecar.hpp"
#include "service/stats.hpp"
#include "support/atomic_file.hpp"

namespace tbp::report {
namespace {

using obs::JsonValue;

[[nodiscard]] std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// A bench-perf body with one entry; the knobs are the gated fields.
[[nodiscard]] JsonValue perf_body(double wall_seconds, double cycles_per_sec,
                                  double error_pct) {
  JsonValue entry = JsonValue::object();
  entry.set("wall_seconds", wall_seconds);
  entry.set("sim_cycles_per_second", cycles_per_sec);
  entry.set("error_pct", error_pct);
  entry.set("from_cache", false);
  JsonValue entries = JsonValue::object();
  entries.set("workload0", std::move(entry));
  JsonValue body = JsonValue::object();
  body.set("bench", "micro_sim");
  body.set("entries", std::move(entries));
  body.set("wall_seconds", wall_seconds + 0.5);
  return body;
}

[[nodiscard]] std::string write_perf(const std::string& path, double wall,
                                     double cps, double err) {
  const Status s = obs::write_json_file(
      obs::seal_json(obs::kBenchPerfSchema, perf_body(wall, cps, err)), path);
  EXPECT_TRUE(s.ok()) << s.to_string();
  return path;
}

/// Runs a command with output swallowed into a scratch stream.
[[nodiscard]] int run(const std::vector<std::string>& args) {
  std::FILE* sink = std::tmpfile();
  const int exit_code = run_report(args, sink != nullptr ? sink : stdout);
  if (sink != nullptr) std::fclose(sink);
  return exit_code;
}

TEST(ReportCliTest, ShowRendersValidDocuments) {
  const std::string dir = temp_dir("tbp_report_show");
  const std::string path = write_perf(dir + "/perf.json", 2.0, 5e6, 1.0);
  EXPECT_EQ(run({"show", path}), kExitOk);
}

TEST(ReportCliTest, MissingFileExitsUnreadable) {
  EXPECT_EQ(run({"show", temp_dir("tbp_report_miss") + "/nope.json"}),
            kExitUnreadable);
  EXPECT_EQ(run({"compare", "/does/not/exist.json", "/also/missing.json"}),
            kExitUnreadable);
}

TEST(ReportCliTest, BadUsageExitsUnreadable) {
  EXPECT_EQ(run({}), kExitUnreadable);
  EXPECT_EQ(run({"frobnicate"}), kExitUnreadable);
  EXPECT_EQ(run({"show"}), kExitUnreadable);
  EXPECT_EQ(run({"compare", "one.json"}), kExitUnreadable);
  const std::string dir = temp_dir("tbp_report_flags");
  const std::string path = write_perf(dir + "/a.json", 1.0, 1e6, 0.5);
  EXPECT_EQ(run({"compare", path, path, "--max-regress", "banana"}),
            kExitUnreadable);
  EXPECT_EQ(run({"compare", path, path, "--max-regress"}), kExitUnreadable);
}

TEST(ReportCliTest, IdenticalManifestsCompareClean) {
  const std::string dir = temp_dir("tbp_report_same");
  const std::string a = write_perf(dir + "/a.json", 2.0, 5e6, 1.0);
  const std::string b = write_perf(dir + "/b.json", 2.0, 5e6, 1.0);
  EXPECT_EQ(run({"compare", a, b, "--max-regress", "10"}), kExitOk);
}

TEST(ReportCliTest, FiftyPercentWallTimeRegressionFailsTheGate) {
  const std::string dir = temp_dir("tbp_report_wall");
  const std::string old_path = write_perf(dir + "/old.json", 2.0, 5e6, 1.0);
  const std::string new_path = write_perf(dir + "/new.json", 3.0, 5e6, 1.0);
  EXPECT_EQ(run({"compare", old_path, new_path, "--max-regress", "10"}),
            kExitRegressed);
  // A generous threshold lets the same pair pass.
  EXPECT_EQ(run({"compare", old_path, new_path, "--max-regress", "400"}),
            kExitOk);
  // Getting faster is never a regression.
  EXPECT_EQ(run({"compare", new_path, old_path, "--max-regress", "10"}),
            kExitOk);
}

TEST(ReportCliTest, ThroughputDropAndAccuracyLossAreGated) {
  const std::string dir = temp_dir("tbp_report_dirs");
  const std::string base = write_perf(dir + "/base.json", 2.0, 5e6, 1.0);
  const std::string slow = write_perf(dir + "/slow.json", 2.0, 2e6, 1.0);
  EXPECT_EQ(run({"compare", base, slow, "--max-regress", "10"}),
            kExitRegressed);
  const std::string wrong = write_perf(dir + "/wrong.json", 2.0, 5e6, 2.5);
  EXPECT_EQ(run({"compare", base, wrong, "--max-regress", "10"}),
            kExitRegressed);
  // Error that *shrinks* in magnitude is an improvement even if signed.
  const std::string better = write_perf(dir + "/better.json", 2.0, 5e6, -0.5);
  EXPECT_EQ(run({"compare", base, better, "--max-regress", "10"}), kExitOk);
}

// Golden output: a manifest carrying `store.*` metrics counters must
// surface them as one deterministic `store:` line — exact bytes pinned.
TEST(ReportCliTest, ShowSurfacesStoreCountersGoldenOutput) {
  const std::string dir = temp_dir("tbp_report_store");
  JsonValue counters = JsonValue::object();
  counters.set("store.hits", std::uint64_t{12});
  counters.set("store.misses", std::uint64_t{3});
  counters.set("store.evictions", std::uint64_t{1});
  counters.set("store.quarantined", std::uint64_t{2});
  counters.set("sim.cycles", std::uint64_t{999});  // non-store: not shown
  JsonValue metrics = JsonValue::object();
  metrics.set("counters", std::move(counters));
  JsonValue body = JsonValue::object();
  body.set("tool", "tbpoint_cli");
  body.set("command", "pipeline");
  body.set("metrics", std::move(metrics));
  const std::string path = dir + "/manifest.json";
  ASSERT_TRUE(
      obs::write_json_file(obs::seal_json(obs::kManifestSchema, body), path)
          .ok());

  std::FILE* capture = std::tmpfile();
  ASSERT_NE(capture, nullptr);
  EXPECT_EQ(run_report({"show", path}, capture), kExitOk);
  std::rewind(capture);
  std::string output;
  char buffer[512];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), capture)) > 0) {
    output.append(buffer, n);
  }
  std::fclose(capture);

  const std::string expected =
      path + " (" + std::string(obs::kManifestSchema) + ")\n" +
      "tool: tbpoint_cli pipeline\n" +
      "store: evictions=1 hits=12 misses=3 quarantined=2\n";
  EXPECT_EQ(output, expected);
}

// Bench-perf documents carry the counters as a `store` object instead;
// the same line must come out.
TEST(ReportCliTest, ShowSurfacesStoreBlockInBenchPerfDocuments) {
  const std::string dir = temp_dir("tbp_report_store_perf");
  JsonValue body = perf_body(2.0, 5e6, 1.0);
  JsonValue store = JsonValue::object();
  store.set("hits", std::uint64_t{7});
  store.set("misses", std::uint64_t{5});
  store.set("evictions", std::uint64_t{0});
  store.set("quarantined", std::uint64_t{1});
  body.set("store", std::move(store));
  const std::string path = dir + "/perf.json";
  ASSERT_TRUE(
      obs::write_json_file(obs::seal_json(obs::kBenchPerfSchema, body), path)
          .ok());

  std::FILE* capture = std::tmpfile();
  ASSERT_NE(capture, nullptr);
  EXPECT_EQ(run_report({"show", path}, capture), kExitOk);
  std::rewind(capture);
  std::string output;
  char buffer[512];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), capture)) > 0) {
    output.append(buffer, n);
  }
  std::fclose(capture);
  EXPECT_NE(
      output.find("store: evictions=0 hits=7 misses=5 quarantined=1\n"),
      std::string::npos)
      << output;
}

[[nodiscard]] std::string capture_run(const std::vector<std::string>& args,
                                      int expected_exit) {
  std::FILE* capture = std::tmpfile();
  EXPECT_NE(capture, nullptr);
  EXPECT_EQ(run_report(args, capture), expected_exit);
  std::rewind(capture);
  std::string output;
  char buffer[512];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), capture)) > 0) {
    output.append(buffer, n);
  }
  std::fclose(capture);
  return output;
}

/// One wall-clock span object in the shape prof::spans_to_value emits.
[[nodiscard]] JsonValue span_value(std::uint64_t count, double total_seconds,
                                   double p50, double p95, double p99) {
  JsonValue span = JsonValue::object();
  span.set("count", count);
  span.set("total_seconds", total_seconds);
  span.set("p50_seconds", p50);
  span.set("p95_seconds", p95);
  span.set("p99_seconds", p99);
  return span;
}

// Golden output: the sealed tbp-service-stats-v1 ledger tbpointd writes on
// exit must render as the counters table plus the wall-clock span table —
// exact bytes pinned, so a format drift is a deliberate test update.
TEST(ReportCliTest, ShowRendersServiceStatsLedgerGoldenOutput) {
  const std::string dir = temp_dir("tbp_report_svc_stats");
  JsonValue counters = JsonValue::object();
  counters.set("claimed", std::uint64_t{5});
  counters.set("deduped", std::uint64_t{2});
  counters.set("malformed", std::uint64_t{0});
  counters.set("responses", std::uint64_t{5});
  counters.set("simulations", std::uint64_t{3});
  counters.set("store_hits", std::uint64_t{1});
  counters.set("store_misses", std::uint64_t{3});
  JsonValue spans = JsonValue::object();
  spans.set("service.simulate", span_value(3, 0.6, 0.1, 0.25, 0.25));
  JsonValue body = JsonValue::object();
  body.set("counters", std::move(counters));
  body.set("spans", std::move(spans));
  const std::string path = dir + "/stats.json";
  ASSERT_TRUE(obs::write_json_file(
                  obs::seal_json(service::kServiceStatsSchema, body), path)
                  .ok());

  const std::string expected =
      path + " (" + std::string(service::kServiceStatsSchema) + ")\n" +
      "counter       value\n"
      "-------------------\n"
      "claimed       5    \n"
      "deduped       2    \n"
      "malformed     0    \n"
      "responses     5    \n"
      "simulations   3    \n"
      "store_hits    1    \n"
      "store_misses  3    \n"
      "\n"
      "wall-clock spans:\n"
      "span              count  total s  p50 ms   p95 ms   p99 ms \n"
      "-----------------------------------------------------------\n"
      "service.simulate  3      0.600    100.000  250.000  250.000\n";
  EXPECT_EQ(capture_run({"show", path}, kExitOk), expected);
}

/// A tbp-prof-v1 body with fixed skew numbers; `max_ratio` is the knob the
/// compare-gating test turns.
[[nodiscard]] JsonValue prof_sidecar_body(double max_ratio) {
  JsonValue skew = JsonValue::object();
  skew.set("rounds", std::uint64_t{4});
  skew.set("n_workers", std::uint64_t{2});
  skew.set("n_sms", std::uint64_t{4});
  skew.set("wall_seconds", 2.0);
  JsonValue::Array sm_busy;
  for (const double v : {0.9, 0.3, 0.2, 0.1}) sm_busy.emplace_back(v);
  skew.set("sm_busy_seconds", JsonValue(std::move(sm_busy)));
  JsonValue::Array worker_busy;
  for (const double v : {1.2, 0.3}) worker_busy.emplace_back(v);
  skew.set("worker_busy_seconds", JsonValue(std::move(worker_busy)));
  JsonValue::Array worker_wait;
  for (const double v : {0.1, 1.0}) worker_wait.emplace_back(v);
  skew.set("worker_wait_seconds", JsonValue(std::move(worker_wait)));
  skew.set("max_imbalance_ratio", max_ratio);
  skew.set("mean_imbalance_ratio", 1.3);
  JsonValue hist = JsonValue::object();
  JsonValue::Array bounds;
  bounds.emplace_back(std::uint64_t{1000});
  bounds.emplace_back(std::uint64_t{2000});
  hist.set("bounds", JsonValue(std::move(bounds)));
  JsonValue::Array hist_counts;
  for (const std::uint64_t c : {std::uint64_t{3}, std::uint64_t{1},
                                std::uint64_t{0}}) {
    hist_counts.emplace_back(c);
  }
  hist.set("counts", JsonValue(std::move(hist_counts)));
  skew.set("imbalance_milli", std::move(hist));
  JsonValue spans = JsonValue::object();
  spans.set("service.simulate", span_value(3, 0.6, 0.1, 0.25, 0.25));
  JsonValue body = JsonValue::object();
  body.set("skew", std::move(skew));
  body.set("spans", std::move(spans));
  return body;
}

[[nodiscard]] std::string write_prof_doc(const std::string& path,
                                         double max_ratio) {
  const Status s = obs::write_json_file(
      obs::seal_json(prof::kProfSchema, prof_sidecar_body(max_ratio)), path);
  EXPECT_TRUE(s.ok()) << s.to_string();
  return path;
}

TEST(ReportCliTest, ProfViewRendersSkewTablesAndPercentiles) {
  const std::string dir = temp_dir("tbp_report_prof");
  const std::string path = write_prof_doc(dir + "/prof.json", 1.6);
  const std::string output = capture_run({"prof", path}, kExitOk);
  EXPECT_NE(output.find("shard skew: 4 rounds, 2 worker(s) over 4 SMs, "
                        "wall 2.000s"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("max 1.600, mean 1.300"), std::string::npos);
  // Worker 1 sits in barrier wait ~77% of its round time.
  EXPECT_NE(output.find("76.9"), std::string::npos) << output;
  // SM 0 holds 60% of all SM busy time — the work-stealing signal.
  EXPECT_NE(output.find("60.0"), std::string::npos) << output;
  EXPECT_NE(output.find("imbalance histogram (ratio x1000): <=1000:3 "
                        "<=2000:1"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("service.simulate"), std::string::npos);

  // `show` routes the same document to the same renderer.
  EXPECT_NE(capture_run({"show", path}, kExitOk).find("shard skew:"),
            std::string::npos);
}

TEST(ReportCliTest, ProfCommandRejectsOtherSchemas) {
  const std::string dir = temp_dir("tbp_report_prof_schema");
  const std::string perf = write_perf(dir + "/perf.json", 2.0, 5e6, 1.0);
  EXPECT_EQ(run({"prof", perf}), kExitUnreadable);
  EXPECT_EQ(run({"prof", dir + "/missing.json"}), kExitUnreadable);
}

TEST(ReportCliTest, CompareGatesSkewRatioRegressions) {
  const std::string dir = temp_dir("tbp_report_prof_gate");
  const std::string balanced = write_prof_doc(dir + "/balanced.json", 1.2);
  const std::string skewed = write_prof_doc(dir + "/skewed.json", 2.4);
  // max_imbalance_ratio doubled: a 100% regression on a lower-is-better
  // field fails the 10% gate but passes a generous one.
  EXPECT_EQ(run({"compare", balanced, skewed, "--max-regress", "10"}),
            kExitRegressed);
  EXPECT_EQ(run({"compare", balanced, skewed, "--max-regress", "150"}),
            kExitOk);
  // Getting more balanced is never a regression.
  EXPECT_EQ(run({"compare", skewed, balanced, "--max-regress", "10"}),
            kExitOk);
}

TEST(ReportCliTest, SchemaMismatchBetweenFilesIsUnreadable) {
  const std::string dir = temp_dir("tbp_report_schema");
  const std::string perf = write_perf(dir + "/perf.json", 2.0, 5e6, 1.0);
  JsonValue manifest_body = JsonValue::object();
  manifest_body.set("tool", "tbpoint_cli");
  const std::string manifest = dir + "/manifest.json";
  ASSERT_TRUE(obs::write_json_file(
                  obs::seal_json(obs::kManifestSchema, manifest_body), manifest)
                  .ok());
  EXPECT_EQ(run({"compare", perf, manifest}), kExitUnreadable);
}

TEST(ReportCliTest, TruncatedManifestExitsUnreadableNeverCrashes) {
  const std::string dir = temp_dir("tbp_report_trunc");
  const std::string path = write_perf(dir + "/perf.json", 2.0, 5e6, 1.0);
  const Result<std::string> pristine = io::read_file_limited(path);
  ASSERT_TRUE(pristine.ok());
  const std::string victim = dir + "/victim.json";
  // size()-2 cuts into the closing brace; size()-1 would only shave the
  // trailing newline, which leaves a complete, valid document.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{1}, pristine->size() / 4,
        pristine->size() / 2, pristine->size() - 2}) {
    ASSERT_TRUE(io::write_file_atomic(victim,
                                      harness::truncate_at(*pristine, keep))
                    .ok());
    EXPECT_EQ(run({"show", victim}), kExitUnreadable) << "keep=" << keep;
    EXPECT_EQ(run({"compare", path, victim}), kExitUnreadable)
        << "keep=" << keep;
  }
}

TEST(ReportCliTest, CorruptionSuiteIsDetectedOrProvablyHarmless) {
  const std::string dir = temp_dir("tbp_report_faults");
  const std::string path = write_perf(dir + "/perf.json", 2.0, 5e6, 1.0);
  const Result<std::string> pristine = io::read_file_limited(path);
  ASSERT_TRUE(pristine.ok());
  const std::string donor_text = obs::json_serialize_pretty(obs::seal_json(
                                     obs::kBenchPerfSchema,
                                     perf_body(9.0, 1e6, 4.0))) +
                                 "\n";
  const std::string canonical_body =
      obs::json_serialize(perf_body(2.0, 5e6, 1.0));

  const std::string victim = dir + "/victim.json";
  for (const harness::Corruption& corruption :
       harness::corruption_suite(*pristine, donor_text)) {
    ASSERT_TRUE(io::write_file_atomic(victim, corruption.payload).ok());
    const int exit_code = run({"show", victim});
    // Never a crash, never a false "regression": either the seal rejects
    // the payload (exit 2) or the mutation provably did not change the
    // canonical body (e.g. a bit flip inside pretty-printing whitespace).
    if (exit_code == kExitOk) {
      const Result<obs::JsonValue> body =
          obs::load_sealed_file(victim, obs::kBenchPerfSchema);
      ASSERT_TRUE(body.ok()) << corruption.name;
      EXPECT_TRUE(obs::json_serialize(*body) == canonical_body ||
                  corruption.payload == donor_text)
          << corruption.name << " accepted with altered content";
    } else {
      EXPECT_EQ(exit_code, kExitUnreadable) << corruption.name;
    }
  }
}

}  // namespace
}  // namespace tbp::report
