#include "core/region_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace tbp::core {
namespace {

RegionTableSet sample_set() {
  RegionTableSet set;
  set.system_occupancy = 84;
  set.tables.emplace_back(
      100, std::vector<HomogeneousRegion>{
               {.region_id = 0, .start_block = 0, .end_block = 39, .n_epochs = 5},
               {.region_id = 1, .start_block = 60, .end_block = 99, .n_epochs = 5},
           });
  set.tables.emplace_back(10, std::vector<HomogeneousRegion>{});
  return set;
}

TEST(RegionIoTest, RoundTripPreservesTables) {
  const RegionTableSet original = sample_set();
  std::stringstream stream;
  save_region_tables(original, stream);
  const auto loaded = load_region_tables(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->system_occupancy, 84u);
  ASSERT_EQ(loaded->tables.size(), 2u);

  const RegionTable& table = loaded->tables[0];
  EXPECT_EQ(table.n_blocks(), 100u);
  ASSERT_EQ(table.regions().size(), 2u);
  EXPECT_EQ(table.region_of(0), 0);
  EXPECT_EQ(table.region_of(39), 0);
  EXPECT_EQ(table.region_of(40), RegionTable::kNoRegion);
  EXPECT_EQ(table.region_of(60), 1);
  EXPECT_EQ(table.regions()[1].n_epochs, 5u);
  EXPECT_TRUE(loaded->tables[1].regions().empty());
}

TEST(RegionIoTest, RejectsWrongMagic) {
  std::stringstream stream("not-regions\n84 0\n");
  const auto loaded = load_region_tables(stream);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorrupt);
}

TEST(RegionIoTest, UnknownVersionIsVersionMismatch) {
  std::stringstream stream("tbpoint-regions-v7\n84 0\n");
  const auto loaded = load_region_tables(stream);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kVersionMismatch);
}

TEST(RegionIoTest, LegacyV1WithoutChecksumStillLoads) {
  std::stringstream stream("tbpoint-regions-v1\n84 1\ntable 10 1\n0 2 5 3\n");
  const auto loaded = load_region_tables(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->system_occupancy, 84u);
  ASSERT_EQ(loaded->tables.size(), 1u);
  EXPECT_EQ(loaded->tables[0].region_of(3), 0);
}

TEST(RegionIoTest, HugeTableCountRejectedBeforeAllocation) {
  std::stringstream stream("tbpoint-regions-v1\n84 888888888888\n");
  const auto loaded = load_region_tables(stream);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kTooLarge);
}

TEST(RegionIoTest, HugeRegionCountRejectedBeforeAllocation) {
  std::stringstream stream(
      "tbpoint-regions-v1\n84 1\ntable 10 999999999999\n");
  const auto loaded = load_region_tables(stream);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kTooLarge);
}

TEST(RegionIoTest, RejectsTrailingGarbage) {
  std::stringstream stream("tbpoint-regions-v1\n84 0\nstray\n");
  const auto loaded = load_region_tables(stream);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorrupt);
}

TEST(RegionIoTest, RejectsTruncation) {
  std::stringstream full;
  save_region_tables(sample_set(), full);
  std::string text = full.str();
  text.resize(text.size() * 2 / 3);
  std::stringstream truncated(text);
  EXPECT_FALSE(load_region_tables(truncated).has_value());
}

TEST(RegionIoTest, RejectsOutOfRangeRegions) {
  std::stringstream stream(
      "tbpoint-regions-v1\n84 1\ntable 10 1\n0 5 20 2\n");  // end 20 >= 10
  EXPECT_FALSE(load_region_tables(stream).has_value());
}

TEST(RegionIoTest, RejectsOverlappingRegions) {
  std::stringstream stream(
      "tbpoint-regions-v1\n84 1\ntable 10 2\n0 0 5 1\n1 4 9 1\n");
  EXPECT_FALSE(load_region_tables(stream).has_value());
}

TEST(RegionIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/tbp_regions_test.txt";
  ASSERT_TRUE(save_region_tables_file(sample_set(), path).ok());
  const auto loaded = load_region_tables_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->tables.size(), 2u);
}

TEST(RegionIoTest, MissingFileIsNotFound) {
  const auto loaded = load_region_tables_file("/nonexistent/r.txt");
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace tbp::core
