// The accuracy-attribution invariant: the three error components telescope
// to the total error, in cycle space and (after the shared linear map) in
// IPC space, on real pipeline runs over synthetic applications.
#include "core/attribution.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "profile/profiler.hpp"
#include "sim/gpu.hpp"
#include "trace/generator.hpp"

namespace tbp::core {
namespace {

trace::BlockBehavior behavior(std::uint32_t iterations) {
  trace::BlockBehavior b;
  b.loop_iterations = iterations;
  b.alu_per_iteration = 4;
  b.mem_per_iteration = 1;
  b.stores_per_iteration = 1;
  b.lines_per_access = 2;
  b.pattern = trace::AddressPattern::kStreaming;
  return b;
}

struct App {
  std::vector<std::unique_ptr<trace::SyntheticLaunch>> launches;
  profile::ApplicationProfile profile;

  void add_launch(std::uint32_t n_blocks, std::uint32_t iterations,
                  std::uint64_t seed) {
    launches.push_back(std::make_unique<trace::SyntheticLaunch>(
        trace::make_synthetic_kernel_info("attr_test"), n_blocks, seed,
        [iterations](std::uint32_t) { return behavior(iterations); }));
    profile.launches.push_back(profile::profile_launch(*launches.back()));
  }

  [[nodiscard]] std::vector<const trace::LaunchTraceSource*> sources() const {
    std::vector<const trace::LaunchTraceSource*> out;
    for (const auto& l : launches) out.push_back(l.get());
    return out;
  }

  /// Ground truth: one fresh simulator per launch, exactly like the
  /// harness's full-simulation arm.
  [[nodiscard]] std::vector<LaunchExact> exact(
      const sim::GpuConfig& config) const {
    std::vector<LaunchExact> out;
    for (const auto& l : launches) {
      sim::GpuSimulator simulator(config);
      const sim::LaunchResult r = simulator.run_launch(*l);
      out.push_back(LaunchExact{r.cycles, r.sim_warp_insts});
    }
    return out;
  }
};

sim::GpuConfig small_config() {
  sim::GpuConfig config = sim::fermi_config();
  config.n_sms = 2;
  return config;
}

void expect_components_telescope(const ErrorAttribution& attr) {
  ASSERT_TRUE(attr.valid);
  const double component_sum =
      attr.inter_cycles + attr.warmup_cycles + attr.reconstruction_cycles;
  const double scale = std::max(1.0, std::abs(attr.exact_total_cycles));
  EXPECT_NEAR(component_sum, attr.total_error_cycles(), 1e-9 * scale);

  const double ipc_sum = attr.inter_ipc_error() + attr.warmup_ipc_error() +
                         attr.reconstruction_ipc_error();
  const double ipc_scale = std::max(1e-12, std::abs(attr.exact_ipc));
  EXPECT_NEAR(ipc_sum, attr.ipc_error(), 1e-9 * ipc_scale);

  const double pct_sum = attr.inter_error_pct() + attr.warmup_error_pct() +
                         attr.reconstruction_error_pct();
  EXPECT_NEAR(pct_sum, attr.total_error_pct(), 1e-7);
}

TEST(AttributionTest, ComponentsSumToTotalOnMixedApp) {
  App app;
  app.add_launch(300, 6, 7);
  app.add_launch(300, 6, 8);   // same shape, different seed: clustered
  app.add_launch(100, 12, 9);  // heavier per-block work: separate cluster
  const sim::GpuConfig config = small_config();
  const TBPointRun run = run_tbpoint(app.sources(), app.profile, config, {});
  const std::vector<LaunchExact> exact = app.exact(config);

  const ErrorAttribution attr = attribute_errors(app.profile, run, exact);
  expect_components_telescope(attr);

  // The decomposition is anchored to the same ground truth the harness
  // reports: total error must match the direct exact-vs-predicted delta.
  double exact_cycles = 0.0;
  for (const LaunchExact& l : exact) {
    exact_cycles += static_cast<double>(l.cycles);
  }
  const double direct_exact_ipc =
      static_cast<double>(app.profile.total_warp_insts()) / exact_cycles;
  EXPECT_NEAR(attr.exact_ipc, direct_exact_ipc, 1e-12);

  // A sampled heterogeneous app has real error somewhere; the decomposition
  // must place it (all-zero components would mean we attributed nothing).
  EXPECT_GT(std::abs(attr.inter_cycles) + std::abs(attr.warmup_cycles) +
                std::abs(attr.reconstruction_cycles),
            0.0);
  EXPECT_EQ(attr.clusters.size(), run.reps.size());
}

TEST(AttributionTest, InterErrorVanishesWithoutInterLaunchSampling) {
  App app;
  app.add_launch(300, 6, 7);
  app.add_launch(100, 12, 9);
  TBPointOptions options;
  options.enable_inter = false;  // identity clustering: every launch is a rep
  const sim::GpuConfig config = small_config();
  const TBPointRun run =
      run_tbpoint(app.sources(), app.profile, config, options);
  const std::vector<LaunchExact> exact = app.exact(config);

  const ErrorAttribution attr = attribute_errors(app.profile, run, exact);
  expect_components_telescope(attr);
  // scale == 1 and the cluster's only member is its representative, so the
  // projection term is identically zero for every cluster.
  EXPECT_NEAR(attr.inter_cycles, 0.0, 1e-9 * attr.exact_total_cycles);
  for (const ClusterAttribution& c : attr.clusters) {
    EXPECT_EQ(c.n_launches, 1u);
    EXPECT_NEAR(c.scale, 1.0, 1e-12);
    EXPECT_EQ(c.mean_distance_to_rep, 0.0);
  }
}

TEST(AttributionTest, FullSimulationOfRepsLeavesOnlyInterError) {
  App app;
  for (int i = 0; i < 4; ++i) app.add_launch(60, 6, 7 + static_cast<std::uint64_t>(i));
  TBPointOptions options;
  options.enable_intra = false;  // representatives simulate all their insts
  const sim::GpuConfig config = small_config();
  const TBPointRun run =
      run_tbpoint(app.sources(), app.profile, config, options);
  const std::vector<LaunchExact> exact = app.exact(config);

  const ErrorAttribution attr = attribute_errors(app.profile, run, exact);
  expect_components_telescope(attr);
  // No fast-forwarded stretches: nothing to re-weigh, no warm-up residual.
  EXPECT_EQ(attr.regions.size(), 0u);
  EXPECT_EQ(attr.reconstruction_cycles, 0.0);
  EXPECT_NEAR(attr.warmup_cycles, 0.0, 1e-9 * attr.exact_total_cycles);
}

TEST(AttributionTest, DegenerateInputsAreInvalidNotUb) {
  const ErrorAttribution empty =
      attribute_errors(profile::ApplicationProfile{}, TBPointRun{}, {});
  EXPECT_FALSE(empty.valid);
  EXPECT_EQ(empty.total_error_cycles(), 0.0);
  EXPECT_EQ(empty.ipc_error(), 0.0);
  EXPECT_EQ(empty.total_error_pct(), 0.0);
}

TEST(AttributionTest, RecordAttributionWritesCounters) {
  App app;
  app.add_launch(300, 6, 7);
  app.add_launch(100, 12, 9);
  const sim::GpuConfig config = small_config();
  const TBPointRun run = run_tbpoint(app.sources(), app.profile, config, {});
  const ErrorAttribution attr =
      attribute_errors(app.profile, run, app.exact(config));
  ASSERT_TRUE(attr.valid);

  obs::MetricsShard shard;
  record_attribution(attr, &shard);
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(shard.counters().count("core.attr.valid"), 1u);
    EXPECT_EQ(shard.counters().count("core.attr.total.err_ppb"), 1u);
    EXPECT_EQ(shard.counters().count("core.attr.inter.err_ppb"), 1u);
    EXPECT_EQ(shard.counters().count("core.attr.warmup.err_ppb"), 1u);
    EXPECT_EQ(shard.counters().count("core.attr.reconstruction.err_ppb"), 1u);
  } else {
    EXPECT_TRUE(shard.counters().empty());
  }
  // Null shard is a no-op, not a crash.
  record_attribution(attr, nullptr);
}

TEST(AttributionTest, DeterministicAcrossRuns) {
  App app;
  app.add_launch(200, 6, 7);
  app.add_launch(200, 9, 8);
  const sim::GpuConfig config = small_config();
  const TBPointRun run_a = run_tbpoint(app.sources(), app.profile, config, {});
  const TBPointRun run_b = run_tbpoint(app.sources(), app.profile, config, {});
  const ErrorAttribution a = attribute_errors(app.profile, run_a, app.exact(config));
  const ErrorAttribution b = attribute_errors(app.profile, run_b, app.exact(config));
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_DOUBLE_EQ(a.inter_cycles, b.inter_cycles);
  EXPECT_DOUBLE_EQ(a.warmup_cycles, b.warmup_cycles);
  EXPECT_DOUBLE_EQ(a.reconstruction_cycles, b.reconstruction_cycles);
}

}  // namespace
}  // namespace tbp::core
