#include "core/reconstruction.hpp"

#include <gtest/gtest.h>

namespace tbp::core {
namespace {

profile::LaunchProfile uniform_launch(std::size_t n_blocks,
                                      std::uint64_t warp_insts_per_block) {
  profile::LaunchProfile launch;
  launch.blocks.assign(n_blocks,
                       profile::BlockStats{.thread_insts = warp_insts_per_block * 32,
                                           .warp_insts = warp_insts_per_block,
                                           .mem_requests = 10});
  return launch;
}

sim::LaunchResult sim_result(std::uint64_t cycles, std::uint64_t insts) {
  sim::LaunchResult result;
  result.cycles = cycles;
  result.sim_warp_insts = insts;
  return result;
}

TEST(PredictLaunchTest, NoSkipsReproducesSimulationExactly) {
  const profile::LaunchProfile launch = uniform_launch(10, 100);
  const sim::LaunchResult result = sim_result(500, 1000);
  const LaunchPrediction p = predict_launch(launch, result, {});
  EXPECT_DOUBLE_EQ(p.predicted_cycles, 500.0);
  EXPECT_DOUBLE_EQ(p.predicted_ipc, 2.0);
  EXPECT_DOUBLE_EQ(p.sample_fraction(), 1.0);
}

TEST(PredictLaunchTest, SkippedRegionAddsCyclesAtLockedIpc) {
  const profile::LaunchProfile launch = uniform_launch(10, 100);
  // 6 blocks simulated (600 insts, 300 cycles), 4 skipped at IPC 2.5.
  const sim::LaunchResult result = sim_result(300, 600);
  const std::vector<SkippedRegion> skipped = {SkippedRegion{
      .region_id = 0,
      .predicted_ipc = 2.5,
      .skipped_warp_insts = 400,
      .skipped_thread_insts = 12800,
      .n_skipped_blocks = 4,
  }};
  const LaunchPrediction p = predict_launch(launch, result, skipped);
  EXPECT_DOUBLE_EQ(p.predicted_cycles, 300.0 + 400.0 / 2.5);
  EXPECT_DOUBLE_EQ(p.predicted_ipc, 1000.0 / 460.0);
  EXPECT_DOUBLE_EQ(p.sample_fraction(), 0.6);
}

TEST(PredictLaunchTest, MultipleRegionsAccumulate) {
  const profile::LaunchProfile launch = uniform_launch(10, 100);
  const sim::LaunchResult result = sim_result(200, 400);
  const std::vector<SkippedRegion> skipped = {
      SkippedRegion{.region_id = 0, .predicted_ipc = 2.0, .skipped_warp_insts = 300},
      SkippedRegion{.region_id = 1, .predicted_ipc = 5.0, .skipped_warp_insts = 300},
  };
  const LaunchPrediction p = predict_launch(launch, result, skipped);
  EXPECT_DOUBLE_EQ(p.predicted_cycles, 200.0 + 150.0 + 60.0);
}

TEST(PredictLaunchTest, ZeroIpcRegionFallsBackToMachineIpc) {
  const profile::LaunchProfile launch = uniform_launch(10, 100);
  const sim::LaunchResult result = sim_result(300, 600);  // machine ipc 2.0
  const std::vector<SkippedRegion> skipped = {
      SkippedRegion{.region_id = 0, .predicted_ipc = 0.0, .skipped_warp_insts = 400}};
  const LaunchPrediction p = predict_launch(launch, result, skipped);
  EXPECT_DOUBLE_EQ(p.predicted_cycles, 300.0 + 200.0);
}

// ---- combine_predictions (Table IV, inter-launch composition) ----

InterLaunchResult two_cluster_inter() {
  InterLaunchResult inter;
  inter.cluster_of_launch = {0, 0, 0, 1, 1};
  inter.clusters = {{0, 1, 2}, {3, 4}};
  inter.representatives = {1, 3};
  return inter;
}

TEST(CombinePredictionsTest, WeightsLaunchesByInstructionCount) {
  profile::ApplicationProfile app;
  // Cluster 0: launches of 1000 insts each; cluster 1: 4000 insts each.
  for (int i = 0; i < 3; ++i) app.launches.push_back(uniform_launch(10, 100));
  for (int i = 0; i < 2; ++i) app.launches.push_back(uniform_launch(10, 400));
  const InterLaunchResult inter = two_cluster_inter();

  LaunchPrediction rep0;
  rep0.total_warp_insts = 1000;
  rep0.simulated_warp_insts = 1000;
  rep0.predicted_cycles = 500;
  rep0.predicted_ipc = 2.0;
  LaunchPrediction rep1;
  rep1.total_warp_insts = 4000;
  rep1.simulated_warp_insts = 2000;
  rep1.predicted_cycles = 1000;
  rep1.predicted_ipc = 4.0;

  const ApplicationPrediction p =
      combine_predictions(app, inter, std::vector<LaunchPrediction>{rep0, rep1});
  // Cluster 0: 3 x 1000 insts at IPC 2 -> 1500 cycles.
  // Cluster 1: 2 x 4000 insts at IPC 4 -> 2000 cycles.
  EXPECT_DOUBLE_EQ(p.predicted_total_cycles, 3500.0);
  EXPECT_DOUBLE_EQ(p.predicted_ipc, 11000.0 / 3500.0);
  // Sampled: only the representatives' simulated instructions.
  EXPECT_EQ(p.simulated_warp_insts, 3000u);
  // Inter skips: the 3 non-representative launches (1000 + 4000... launches
  // 0 and 2 from cluster 0, launch 4 from cluster 1).
  EXPECT_EQ(p.skipped_inter_warp_insts, 1000u + 1000u + 4000u);
  // Intra skips: what the representatives fast-forwarded (0 + 2000).
  EXPECT_EQ(p.skipped_intra_warp_insts, 2000u);
  EXPECT_EQ(p.total_warp_insts, 11000u);
  EXPECT_NEAR(p.sample_fraction(), 3000.0 / 11000.0, 1e-12);
  EXPECT_NEAR(p.inter_skip_share(), 6000.0 / 8000.0, 1e-12);
}

TEST(CombinePredictionsTest, SingleFullySimulatedLaunchIsIdentity) {
  profile::ApplicationProfile app;
  app.launches.push_back(uniform_launch(10, 100));
  InterLaunchResult inter;
  inter.cluster_of_launch = {0};
  inter.clusters = {{0}};
  inter.representatives = {0};

  LaunchPrediction rep;
  rep.total_warp_insts = 1000;
  rep.simulated_warp_insts = 1000;
  rep.predicted_cycles = 400;
  rep.predicted_ipc = 2.5;

  const ApplicationPrediction p =
      combine_predictions(app, inter, std::vector<LaunchPrediction>{rep});
  EXPECT_DOUBLE_EQ(p.predicted_ipc, 2.5);
  EXPECT_DOUBLE_EQ(p.sample_fraction(), 1.0);
  EXPECT_EQ(p.skipped_inter_warp_insts, 0u);
  EXPECT_EQ(p.skipped_intra_warp_insts, 0u);
  EXPECT_DOUBLE_EQ(p.inter_skip_share(), 0.0);
}

TEST(ApplicationPredictionTest, ShareMathHandlesZeroSkips) {
  ApplicationPrediction p;
  EXPECT_DOUBLE_EQ(p.inter_skip_share(), 0.0);
  EXPECT_DOUBLE_EQ(p.sample_fraction(), 0.0);
}

}  // namespace
}  // namespace tbp::core
