#include "core/epoch.hpp"

#include <gtest/gtest.h>

namespace tbp::core {
namespace {

profile::BlockStats block(std::uint64_t warp_insts, std::uint64_t mem_requests) {
  return profile::BlockStats{.thread_insts = warp_insts * 32,
                             .warp_insts = warp_insts,
                             .mem_requests = mem_requests};
}

TEST(EpochTest, PartitionCoversAllBlocksExactlyOnce) {
  profile::LaunchProfile launch;
  for (int i = 0; i < 23; ++i) launch.blocks.push_back(block(100, 10));
  const std::vector<Epoch> epochs = build_epochs(launch, 5);
  ASSERT_EQ(epochs.size(), 5u);  // 4 full + 1 partial
  std::uint32_t covered = 0;
  std::uint32_t expected_first = 0;
  for (const Epoch& e : epochs) {
    EXPECT_EQ(e.first_block, expected_first);
    covered += e.n_blocks;
    expected_first = e.end_block();
  }
  EXPECT_EQ(covered, 23u);
  EXPECT_EQ(epochs.back().n_blocks, 3u);
}

TEST(EpochTest, EpochSizeEqualsSystemOccupancy) {
  profile::LaunchProfile launch;
  for (int i = 0; i < 100; ++i) launch.blocks.push_back(block(100, 10));
  for (std::uint32_t occ : {1u, 7u, 84u}) {
    const std::vector<Epoch> epochs = build_epochs(launch, occ);
    for (std::size_t e = 0; e + 1 < epochs.size(); ++e) {
      EXPECT_EQ(epochs[e].n_blocks, occ);
    }
  }
}

TEST(EpochTest, StallProbabilityIsMeanOfBlockRatios) {
  profile::LaunchProfile launch;
  launch.blocks = {block(100, 10), block(100, 30)};  // p = 0.1, 0.3
  const std::vector<Epoch> epochs = build_epochs(launch, 2);
  ASSERT_EQ(epochs.size(), 1u);
  EXPECT_DOUBLE_EQ(epochs[0].avg_stall_probability, 0.2);
}

TEST(EpochTest, UniformEpochHasZeroVarianceFactor) {
  profile::LaunchProfile launch;
  for (int i = 0; i < 8; ++i) launch.blocks.push_back(block(100, 10));
  const std::vector<Epoch> epochs = build_epochs(launch, 4);
  for (const Epoch& e : epochs) EXPECT_DOUBLE_EQ(e.variance_factor, 0.0);
}

TEST(EpochTest, OutlierBlockRaisesVarianceFactor) {
  profile::LaunchProfile launch;
  launch.blocks = {block(100, 10), block(100, 10), block(100, 10),
                   block(1600, 160)};  // 16x outlier, same p
  const std::vector<Epoch> epochs = build_epochs(launch, 4);
  ASSERT_EQ(epochs.size(), 1u);
  // p identical across blocks...
  EXPECT_DOUBLE_EQ(epochs[0].avg_stall_probability, 0.1);
  // ...but the variance factor exposes the outlier (paper's mst case).
  EXPECT_GT(epochs[0].variance_factor, 0.3);
}

TEST(EpochTest, VarianceFactorIsMaxOfXandYCov) {
  profile::LaunchProfile launch;
  // warp insts uniform (CoV 0), mem requests vary (CoV > 0).
  launch.blocks = {block(100, 5), block(100, 45)};
  const std::vector<Epoch> epochs = build_epochs(launch, 2);
  ASSERT_EQ(epochs.size(), 1u);
  // CoV of {5,45}: mean 25, stddev 20 -> 0.8.
  EXPECT_NEAR(epochs[0].variance_factor, 0.8, 1e-12);
}

TEST(EpochTest, EmptyLaunchYieldsNoEpochs) {
  profile::LaunchProfile launch;
  EXPECT_TRUE(build_epochs(launch, 4).empty());
}

TEST(EpochTest, OccupancyLargerThanLaunch) {
  profile::LaunchProfile launch;
  launch.blocks = {block(100, 10), block(100, 10)};
  const std::vector<Epoch> epochs = build_epochs(launch, 50);
  ASSERT_EQ(epochs.size(), 1u);
  EXPECT_EQ(epochs[0].n_blocks, 2u);
}

}  // namespace
}  // namespace tbp::core
