#include "core/inter_launch.hpp"

#include <gtest/gtest.h>

#include <set>

namespace tbp::core {
namespace {

profile::LaunchProfile make_profile(std::uint64_t thread_insts_per_block,
                                    std::uint64_t warp_insts_per_block,
                                    std::uint64_t mem_per_block,
                                    std::size_t n_blocks) {
  profile::LaunchProfile launch;
  launch.kernel_name = "k";
  launch.blocks.assign(n_blocks, profile::BlockStats{
                                     .thread_insts = thread_insts_per_block,
                                     .warp_insts = warp_insts_per_block,
                                     .mem_requests = mem_per_block,
                                 });
  return launch;
}

TEST(InterLaunchTest, FeatureVectorValues) {
  profile::LaunchProfile launch = make_profile(3200, 100, 40, 4);
  const cluster::FeatureVector f = inter_feature_vector(launch);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_DOUBLE_EQ(f[0], 3200.0 * 4);  // thread insts
  EXPECT_DOUBLE_EQ(f[1], 100.0 * 4);   // warp insts
  EXPECT_DOUBLE_EQ(f[2], 40.0 * 4);    // memory requests
  EXPECT_DOUBLE_EQ(f[3], 0.0);         // uniform blocks: zero CoV
}

TEST(InterLaunchTest, FeatureVectorCapturesBlockVariation) {
  profile::LaunchProfile launch;
  launch.blocks = {{.thread_insts = 100, .warp_insts = 10, .mem_requests = 1},
                   {.thread_insts = 900, .warp_insts = 90, .mem_requests = 9}};
  const cluster::FeatureVector f = inter_feature_vector(launch);
  EXPECT_GT(f[3], 0.5);  // strong size variation
}

TEST(InterLaunchTest, IdenticalLaunchesFormOneCluster) {
  profile::ApplicationProfile app;
  for (int i = 0; i < 10; ++i) app.launches.push_back(make_profile(3200, 100, 40, 8));
  const InterLaunchResult result = cluster_launches(app);
  EXPECT_EQ(result.clusters.size(), 1u);
  EXPECT_EQ(result.representatives.size(), 1u);
  EXPECT_EQ(result.clusters[0].size(), 10u);
}

TEST(InterLaunchTest, DistinctLaunchesSeparate) {
  profile::ApplicationProfile app;
  app.launches.push_back(make_profile(3200, 100, 40, 8));   // small
  app.launches.push_back(make_profile(3200, 100, 40, 8));   // small (same)
  app.launches.push_back(make_profile(32000, 1000, 400, 80));  // 10x bigger
  const InterLaunchResult result = cluster_launches(app);
  ASSERT_EQ(result.clusters.size(), 2u);
  EXPECT_EQ(result.cluster_of_launch[0], result.cluster_of_launch[1]);
  EXPECT_NE(result.cluster_of_launch[0], result.cluster_of_launch[2]);
}

TEST(InterLaunchTest, DivergenceSeparatesEqualSizedLaunches) {
  // Same thread instructions, very different warp instructions (the paper's
  // 32-thread-in-1-warp-inst vs 32-warp-inst example).
  profile::ApplicationProfile app;
  app.launches.push_back(make_profile(3200, 100, 40, 8));
  app.launches.push_back(make_profile(3200, 3200, 40, 8));
  const InterLaunchResult result = cluster_launches(app);
  EXPECT_EQ(result.clusters.size(), 2u);
}

TEST(InterLaunchTest, MemoryDivergenceSeparates) {
  profile::ApplicationProfile app;
  app.launches.push_back(make_profile(3200, 100, 10, 8));
  app.launches.push_back(make_profile(3200, 100, 300, 8));
  const InterLaunchResult result = cluster_launches(app);
  EXPECT_EQ(result.clusters.size(), 2u);
}

TEST(InterLaunchTest, NearIdenticalLaunchesMergeWithinThreshold) {
  // 1% differences normalize to distances far below sigma = 0.1.
  profile::ApplicationProfile app;
  app.launches.push_back(make_profile(3200, 100, 40, 8));
  app.launches.push_back(make_profile(3232, 101, 40, 8));
  const InterLaunchResult result = cluster_launches(app);
  EXPECT_EQ(result.clusters.size(), 1u);
}

TEST(InterLaunchTest, RepresentativeIsClusterMember) {
  profile::ApplicationProfile app;
  app.launches.push_back(make_profile(3200, 100, 40, 8));
  app.launches.push_back(make_profile(3230, 101, 41, 8));
  app.launches.push_back(make_profile(32000, 1000, 400, 80));
  const InterLaunchResult result = cluster_launches(app);
  for (std::size_t c = 0; c < result.clusters.size(); ++c) {
    const auto& members = result.clusters[c];
    EXPECT_TRUE(std::find(members.begin(), members.end(),
                          result.representatives[c]) != members.end());
    EXPECT_TRUE(result.is_representative(result.representatives[c]));
  }
}

TEST(InterLaunchTest, ClustersPartitionLaunches) {
  profile::ApplicationProfile app;
  for (std::uint64_t i = 0; i < 12; ++i) {
    app.launches.push_back(make_profile(1000 + 400 * (i % 3), 100, 40, 8));
  }
  const InterLaunchResult result = cluster_launches(app);
  std::set<std::size_t> seen;
  for (const auto& members : result.clusters) {
    for (std::size_t m : members) {
      EXPECT_TRUE(seen.insert(m).second) << "launch in two clusters";
    }
  }
  EXPECT_EQ(seen.size(), 12u);
}

TEST(InterLaunchTest, TighterThresholdNeverMakesFewerClusters) {
  profile::ApplicationProfile app;
  for (std::uint64_t i = 0; i < 10; ++i) {
    app.launches.push_back(make_profile(1000 + i * 60, 100 + i * 3, 40, 8));
  }
  InterLaunchOptions loose;
  loose.distance_threshold = 0.5;
  InterLaunchOptions tight;
  tight.distance_threshold = 0.01;
  EXPECT_GE(cluster_launches(app, tight).clusters.size(),
            cluster_launches(app, loose).clusters.size());
}

TEST(InterLaunchTest, BbvExtensionSeparatesCodeMixTwins) {
  // Two launches with identical aggregate counts but different basic-block
  // mixes: indistinguishable to the plain Eq. 2 features, separated once
  // the footnote-2 BBV extension is enabled.
  profile::ApplicationProfile app;
  profile::LaunchProfile a = make_profile(3200, 100, 40, 8);
  a.bbv = {800, 0, 0, 0};
  profile::LaunchProfile b = make_profile(3200, 100, 40, 8);
  b.bbv = {0, 800, 0, 0};
  app.launches = {a, b};

  const InterLaunchResult plain = cluster_launches(app);
  EXPECT_EQ(plain.clusters.size(), 1u);

  InterLaunchOptions with_bbv;
  with_bbv.include_bbv = true;
  const InterLaunchResult extended = cluster_launches(app, with_bbv);
  EXPECT_EQ(extended.clusters.size(), 2u);
  EXPECT_EQ(extended.features[0].size(), 8u);  // 4 Eq. 2 dims + 4 BBV dims
}

TEST(InterLaunchTest, BbvExtensionKeepsIdenticalLaunchesTogether) {
  profile::ApplicationProfile app;
  for (int i = 0; i < 5; ++i) {
    profile::LaunchProfile launch = make_profile(3200, 100, 40, 8);
    launch.bbv = {400, 300, 100, 0};
    app.launches.push_back(std::move(launch));
  }
  InterLaunchOptions with_bbv;
  with_bbv.include_bbv = true;
  EXPECT_EQ(cluster_launches(app, with_bbv).clusters.size(), 1u);
}

TEST(InterLaunchTest, EmptyApplication) {
  const InterLaunchResult result = cluster_launches(profile::ApplicationProfile{});
  EXPECT_TRUE(result.clusters.empty());
  EXPECT_TRUE(result.representatives.empty());
}

}  // namespace
}  // namespace tbp::core
