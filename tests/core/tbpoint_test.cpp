// End-to-end TBPoint pipeline tests on small synthetic applications.
#include "core/tbpoint.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "profile/profiler.hpp"
#include "sim/gpu.hpp"
#include "trace/generator.hpp"

namespace tbp::core {
namespace {

trace::BlockBehavior behavior(std::uint32_t iterations) {
  trace::BlockBehavior b;
  b.loop_iterations = iterations;
  b.alu_per_iteration = 4;
  b.mem_per_iteration = 1;
  b.stores_per_iteration = 1;
  b.lines_per_access = 2;
  b.pattern = trace::AddressPattern::kStreaming;
  return b;
}

struct App {
  std::vector<std::unique_ptr<trace::SyntheticLaunch>> launches;
  profile::ApplicationProfile profile;

  void add_launch(std::uint32_t n_blocks, std::uint32_t iterations,
                  std::uint64_t seed) {
    launches.push_back(std::make_unique<trace::SyntheticLaunch>(
        trace::make_synthetic_kernel_info("tbp_test"), n_blocks, seed,
        [iterations](std::uint32_t) { return behavior(iterations); }));
    profile.launches.push_back(profile::profile_launch(*launches.back()));
  }

  [[nodiscard]] std::vector<const trace::LaunchTraceSource*> sources() const {
    std::vector<const trace::LaunchTraceSource*> out;
    for (const auto& l : launches) out.push_back(l.get());
    return out;
  }

  [[nodiscard]] double full_ipc(const sim::GpuConfig& config) const {
    sim::GpuSimulator simulator(config);
    std::uint64_t cycles = 0;
    std::uint64_t insts = 0;
    for (const auto& l : launches) {
      const sim::LaunchResult r = simulator.run_launch(*l);
      cycles += r.cycles;
      insts += r.sim_warp_insts;
    }
    return static_cast<double>(insts) / static_cast<double>(cycles);
  }
};

sim::GpuConfig small_config() {
  sim::GpuConfig config = sim::fermi_config();
  config.n_sms = 2;
  return config;
}

TEST(TBPointTest, IdenticalLaunchesCollapseToOneRepresentative) {
  App app;
  for (int i = 0; i < 8; ++i) app.add_launch(60, 6, /*seed=*/7);
  const TBPointRun run =
      run_tbpoint(app.sources(), app.profile, small_config(), {});
  EXPECT_EQ(run.inter.clusters.size(), 1u);
  ASSERT_EQ(run.reps.size(), 1u);
  // 7 of 8 launches were never simulated.
  EXPECT_LE(run.app.sample_fraction(), 1.0 / 8.0 + 1e-9);
  EXPECT_GT(run.app.skipped_inter_warp_insts, 0u);
}

TEST(TBPointTest, PredictionMatchesFullForHomogeneousApp) {
  App app;
  for (int i = 0; i < 6; ++i) app.add_launch(50, 6, 7);
  const sim::GpuConfig config = small_config();
  const TBPointRun run = run_tbpoint(app.sources(), app.profile, config, {});
  const double full = app.full_ipc(config);
  EXPECT_NEAR(run.app.predicted_ipc, full, 0.05 * full);
}

TEST(TBPointTest, HeterogeneousLaunchesGetSeparateRepresentatives) {
  App app;
  app.add_launch(50, 4, 7);
  app.add_launch(50, 4, 7);
  app.add_launch(50, 16, 9);  // 4x the work per block
  app.add_launch(50, 16, 9);
  const TBPointRun run =
      run_tbpoint(app.sources(), app.profile, small_config(), {});
  EXPECT_EQ(run.inter.clusters.size(), 2u);
  EXPECT_EQ(run.reps.size(), 2u);
}

TEST(TBPointTest, DisablingInterSimulatesEveryLaunch) {
  App app;
  for (int i = 0; i < 5; ++i) app.add_launch(40, 6, 7);
  TBPointOptions options;
  options.enable_inter = false;
  const TBPointRun run =
      run_tbpoint(app.sources(), app.profile, small_config(), options);
  EXPECT_EQ(run.reps.size(), 5u);
  EXPECT_EQ(run.app.skipped_inter_warp_insts, 0u);
}

TEST(TBPointTest, DisablingIntraSimulatesRepresentativesFully) {
  App app;
  for (int i = 0; i < 4; ++i) app.add_launch(120, 6, 7);
  TBPointOptions options;
  options.enable_intra = false;
  const TBPointRun run =
      run_tbpoint(app.sources(), app.profile, small_config(), options);
  ASSERT_EQ(run.reps.size(), 1u);
  EXPECT_EQ(run.app.skipped_intra_warp_insts, 0u);
  EXPECT_DOUBLE_EQ(run.reps[0].prediction.sample_fraction(), 1.0);
}

TEST(TBPointTest, IntraSamplingSkipsWithinLargeUniformLaunch) {
  App app;
  app.add_launch(400, 6, 7);  // one big homogeneous launch
  const sim::GpuConfig config = small_config();  // occupancy 12 -> 34 epochs
  const TBPointRun run = run_tbpoint(app.sources(), app.profile, config, {});
  ASSERT_EQ(run.reps.size(), 1u);
  EXPECT_GT(run.app.skipped_intra_warp_insts, 0u);
  EXPECT_LT(run.app.sample_fraction(), 0.8);
  // And the prediction still tracks the full simulation.
  const double full = app.full_ipc(config);
  EXPECT_NEAR(run.app.predicted_ipc, full, 0.05 * full);
}

TEST(TBPointTest, SampleAccountingIsConsistent) {
  App app;
  app.add_launch(300, 6, 7);
  app.add_launch(300, 6, 7);
  app.add_launch(100, 12, 9);
  const TBPointRun run =
      run_tbpoint(app.sources(), app.profile, small_config(), {});
  EXPECT_EQ(run.app.simulated_warp_insts + run.app.skipped_inter_warp_insts +
                run.app.skipped_intra_warp_insts,
            run.app.total_warp_insts);
  EXPECT_EQ(run.app.total_warp_insts, app.profile.total_warp_insts());
}

TEST(TBPointTest, DeterministicAcrossRuns) {
  App app;
  app.add_launch(200, 6, 7);
  app.add_launch(200, 9, 8);
  const TBPointRun a = run_tbpoint(app.sources(), app.profile, small_config(), {});
  const TBPointRun b = run_tbpoint(app.sources(), app.profile, small_config(), {});
  EXPECT_DOUBLE_EQ(a.app.predicted_ipc, b.app.predicted_ipc);
  EXPECT_EQ(a.app.simulated_warp_insts, b.app.simulated_warp_insts);
}

}  // namespace
}  // namespace tbp::core
