// The RegionSampler state machine, driven by hand-crafted event sequences
// (no simulator involved): enter, warm, fast-forward, exit, finalize.
#include "core/region_sampler.hpp"

#include <gtest/gtest.h>

namespace tbp::core {
namespace {

using sim::BlockAction;
using sim::SamplingUnit;

/// 40 blocks, 100 warp insts each; blocks [8, 31] form region 0.
struct Fixture {
  Fixture() {
    launch.blocks.assign(40, profile::BlockStats{.thread_insts = 3200,
                                                 .warp_insts = 100,
                                                 .mem_requests = 20});
    table = RegionTable(
        40, {HomogeneousRegion{.region_id = 0, .start_block = 8, .end_block = 31}});
  }

  SamplingUnit unit(std::uint64_t start, std::uint64_t end,
                    std::uint64_t insts) const {
    return SamplingUnit{.start_cycle = start,
                        .end_cycle = end,
                        .warp_insts = insts,
                        .end_block_id = 0};
  }

  profile::LaunchProfile launch;
  RegionTable table;
};

TEST(RegionSamplerTest, StartsNormalAndSimulates) {
  Fixture f;
  RegionSampler sampler(f.launch, f.table);
  EXPECT_EQ(sampler.state(), RegionSampler::State::kNormal);
  EXPECT_EQ(sampler.on_block_dispatch(0, 0), BlockAction::kSimulate);
  EXPECT_EQ(sampler.state(), RegionSampler::State::kNormal);
}

TEST(RegionSamplerTest, EntersWarmingWhenRunningSetIsRegionOnly) {
  Fixture f;
  RegionSampler sampler(f.launch, f.table);
  // Non-region blocks dispatched and retired.
  for (std::uint32_t b = 0; b < 8; ++b) {
    EXPECT_EQ(sampler.on_block_dispatch(b, b), BlockAction::kSimulate);
  }
  for (std::uint32_t b = 0; b < 8; ++b) sampler.on_block_retire(b, 100, false);
  // Region blocks fill the machine.
  for (std::uint32_t b = 8; b < 12; ++b) {
    EXPECT_EQ(sampler.on_block_dispatch(b, 100 + b), BlockAction::kSimulate);
  }
  EXPECT_EQ(sampler.state(), RegionSampler::State::kWarming);
  EXPECT_EQ(sampler.current_region(), 0);
}

TEST(RegionSamplerTest, StragglerWithinToleranceStillEnters) {
  Fixture f;
  RegionSamplerOptions options;
  options.entry_fraction = 0.9;
  RegionSampler sampler(f.launch, f.table, options);
  // One non-region straggler among ten region blocks: 10/11 > 0.9.
  EXPECT_EQ(sampler.on_block_dispatch(2, 0), BlockAction::kSimulate);
  for (std::uint32_t b = 8; b < 18; ++b) {
    EXPECT_EQ(sampler.on_block_dispatch(b, b), BlockAction::kSimulate);
  }
  EXPECT_EQ(sampler.state(), RegionSampler::State::kWarming);
}

TEST(RegionSamplerTest, StrictEntryFractionBlocksStraggler) {
  Fixture f;
  RegionSamplerOptions options;
  options.entry_fraction = 1.0;  // the paper's strict rule
  RegionSampler sampler(f.launch, f.table, options);
  (void)sampler.on_block_dispatch(2, 0);
  for (std::uint32_t b = 8; b < 18; ++b) (void)sampler.on_block_dispatch(b, b);
  EXPECT_EQ(sampler.state(), RegionSampler::State::kNormal);
  // Straggler retires -> entry happens.
  sampler.on_block_retire(2, 50, false);
  EXPECT_EQ(sampler.state(), RegionSampler::State::kWarming);
}

/// Options used by the state-machine tests: the paper's 2-unit minimum
/// (the production default of 3 additionally discards the fill transient,
/// covered separately below).
RegionSamplerOptions two_unit_options() {
  RegionSamplerOptions options;
  options.min_warm_units = 2;
  return options;
}

/// Drives the sampler to the fast-forward state: 4 region blocks running,
/// two stable units observed.
void warm_to_fast_forward(RegionSampler& sampler, const Fixture& f) {
  for (std::uint32_t b = 8; b < 12; ++b) {
    ASSERT_EQ(sampler.on_block_dispatch(b, 10), BlockAction::kSimulate);
  }
  ASSERT_EQ(sampler.state(), RegionSampler::State::kWarming);
  sampler.on_sampling_unit(f.unit(20, 120, 500));   // ipc 5.0
  ASSERT_EQ(sampler.state(), RegionSampler::State::kWarming);
  sampler.on_sampling_unit(f.unit(120, 220, 510));  // ipc 5.1: within 10%
  ASSERT_EQ(sampler.state(), RegionSampler::State::kFastForward);
}

TEST(RegionSamplerTest, TwoStableUnitsTriggerFastForward) {
  Fixture f;
  RegionSampler sampler(f.launch, f.table, two_unit_options());
  warm_to_fast_forward(sampler, f);
}

TEST(RegionSamplerTest, DefaultMinWarmUnitsDiscardsFillTransient) {
  Fixture f;
  RegionSampler sampler(f.launch, f.table);  // default min_warm_units = 3
  for (std::uint32_t b = 8; b < 12; ++b) {
    (void)sampler.on_block_dispatch(b, 10);
  }
  sampler.on_sampling_unit(f.unit(20, 120, 500));   // fill transient
  sampler.on_sampling_unit(f.unit(120, 220, 510));  // stable pair already...
  // ...but the third unit is required before locking in.
  EXPECT_EQ(sampler.state(), RegionSampler::State::kWarming);
  sampler.on_sampling_unit(f.unit(220, 320, 505));
  EXPECT_EQ(sampler.state(), RegionSampler::State::kFastForward);
}

TEST(RegionSamplerTest, UnstableUnitsKeepWarming) {
  Fixture f;
  RegionSampler sampler(f.launch, f.table, two_unit_options());
  for (std::uint32_t b = 8; b < 12; ++b) (void)sampler.on_block_dispatch(b, 10);
  sampler.on_sampling_unit(f.unit(20, 120, 500));   // ipc 5.0
  sampler.on_sampling_unit(f.unit(120, 220, 300));  // ipc 3.0: 40% off
  EXPECT_EQ(sampler.state(), RegionSampler::State::kWarming);
  sampler.on_sampling_unit(f.unit(220, 320, 310));  // ipc 3.1: stable now
  EXPECT_EQ(sampler.state(), RegionSampler::State::kFastForward);
}

TEST(RegionSamplerTest, UnitsBeforeWarmingStartAreIgnored) {
  Fixture f;
  RegionSampler sampler(f.launch, f.table, two_unit_options());
  for (std::uint32_t b = 8; b < 12; ++b) (void)sampler.on_block_dispatch(b, 10);
  // Unit that started before the region was entered (start 5 < 10).
  sampler.on_sampling_unit(f.unit(5, 110, 500));
  sampler.on_sampling_unit(f.unit(110, 210, 500));
  // Only one unit counted so far -> still warming.
  EXPECT_EQ(sampler.state(), RegionSampler::State::kWarming);
}

TEST(RegionSamplerTest, FastForwardSkipsRegionBlocksAndAccounts) {
  Fixture f;
  RegionSampler sampler(f.launch, f.table, two_unit_options());
  warm_to_fast_forward(sampler, f);
  for (std::uint32_t b = 12; b < 20; ++b) {
    EXPECT_EQ(sampler.on_block_dispatch(b, 300), BlockAction::kSkip);
    sampler.on_block_retire(b, 300, true);
  }
  sampler.finalize();
  ASSERT_EQ(sampler.skipped_regions().size(), 1u);
  const SkippedRegion& s = sampler.skipped_regions()[0];
  EXPECT_EQ(s.region_id, 0);
  EXPECT_EQ(s.n_skipped_blocks, 8u);
  EXPECT_EQ(s.skipped_warp_insts, 800u);
  EXPECT_NEAR(s.predicted_ipc, 5.1, 1e-12);
  EXPECT_EQ(sampler.total_skipped_warp_insts(), 800u);
  EXPECT_EQ(sampler.total_skipped_blocks(), 8u);
}

TEST(RegionSamplerTest, NonRegionBlockExitsFastForward) {
  Fixture f;
  RegionSampler sampler(f.launch, f.table, two_unit_options());
  warm_to_fast_forward(sampler, f);
  (void)sampler.on_block_dispatch(12, 300);  // skipped
  // Block 32 is outside the region: exit, simulate it.
  EXPECT_EQ(sampler.on_block_dispatch(32, 400), BlockAction::kSimulate);
  EXPECT_EQ(sampler.state(), RegionSampler::State::kNormal);
  // The fast-forward record was flushed at exit.
  ASSERT_EQ(sampler.skipped_regions().size(), 1u);
  EXPECT_EQ(sampler.skipped_regions()[0].n_skipped_blocks, 1u);
}

TEST(RegionSamplerTest, FinalizeFlushesOpenRecord) {
  Fixture f;
  RegionSampler sampler(f.launch, f.table, two_unit_options());
  warm_to_fast_forward(sampler, f);
  (void)sampler.on_block_dispatch(13, 300);
  EXPECT_TRUE(sampler.skipped_regions().empty());
  sampler.finalize();
  EXPECT_EQ(sampler.skipped_regions().size(), 1u);
  // Idempotent.
  sampler.finalize();
  EXPECT_EQ(sampler.skipped_regions().size(), 1u);
}

TEST(RegionSamplerTest, MaxWarmUnitsForcesFastForward) {
  Fixture f;
  RegionSamplerOptions options = two_unit_options();
  options.max_warm_units = 3;
  RegionSampler sampler(f.launch, f.table, options);
  for (std::uint32_t b = 8; b < 12; ++b) (void)sampler.on_block_dispatch(b, 10);
  sampler.on_sampling_unit(f.unit(20, 120, 500));   // 5.0
  sampler.on_sampling_unit(f.unit(120, 220, 900));  // 9.0: unstable
  EXPECT_EQ(sampler.state(), RegionSampler::State::kWarming);
  sampler.on_sampling_unit(f.unit(220, 320, 500));  // 5.0: unstable vs 9.0
  EXPECT_EQ(sampler.state(), RegionSampler::State::kFastForward);
}

TEST(RegionSamplerTest, MixedRunningSetLeavesWarming) {
  Fixture f;
  RegionSamplerOptions options;
  options.entry_fraction = 1.0;
  RegionSampler sampler(f.launch, f.table, options);
  for (std::uint32_t b = 8; b < 12; ++b) (void)sampler.on_block_dispatch(b, 10);
  EXPECT_EQ(sampler.state(), RegionSampler::State::kWarming);
  // A non-region block joins: warming aborts (units would be polluted).
  (void)sampler.on_block_dispatch(33, 20);
  EXPECT_EQ(sampler.state(), RegionSampler::State::kNormal);
}

TEST(RegionSamplerTest, NoRegionsMeansEverythingSimulated) {
  Fixture f;
  RegionTable empty(40, {});
  RegionSampler sampler(f.launch, empty);
  for (std::uint32_t b = 0; b < 40; ++b) {
    EXPECT_EQ(sampler.on_block_dispatch(b, b), BlockAction::kSimulate);
  }
  sampler.finalize();
  EXPECT_TRUE(sampler.skipped_regions().empty());
}

TEST(RegionSamplerTest, FinalTailBlocksAreSimulatedNotSkipped) {
  // Region [8, 31] runs to the end of a 32-block launch; with a 6-block
  // tail, blocks 26..31 must be simulated so the drain is measured.
  profile::LaunchProfile launch;
  launch.blocks.assign(32, profile::BlockStats{.thread_insts = 3200,
                                               .warp_insts = 100,
                                               .mem_requests = 20});
  RegionTable table(
      32, {HomogeneousRegion{.region_id = 0, .start_block = 8, .end_block = 31}});
  RegionSamplerOptions options = two_unit_options();
  options.simulate_final_tail_blocks = 6;
  RegionSampler sampler(launch, table, options);

  for (std::uint32_t b = 8; b < 12; ++b) {
    ASSERT_EQ(sampler.on_block_dispatch(b, 10), sim::BlockAction::kSimulate);
  }
  sampler.on_sampling_unit(SamplingUnit{
      .start_cycle = 20, .end_cycle = 120, .warp_insts = 500, .end_block_id = 8});
  sampler.on_sampling_unit(SamplingUnit{
      .start_cycle = 120, .end_cycle = 220, .warp_insts = 500, .end_block_id = 9});
  ASSERT_EQ(sampler.state(), RegionSampler::State::kFastForward);

  // Middle of the region: skipped.
  EXPECT_EQ(sampler.on_block_dispatch(12, 300), sim::BlockAction::kSkip);
  EXPECT_EQ(sampler.on_block_dispatch(25, 300), sim::BlockAction::kSkip);
  // Tail: simulated (26 + 6 >= 32).
  EXPECT_EQ(sampler.on_block_dispatch(26, 400), sim::BlockAction::kSimulate);
  EXPECT_EQ(sampler.on_block_dispatch(31, 400), sim::BlockAction::kSimulate);

  sampler.finalize();
  ASSERT_EQ(sampler.skipped_regions().size(), 1u);
  EXPECT_EQ(sampler.skipped_regions()[0].n_skipped_blocks, 2u);
}

// Regression for a determinism leak found by tbp-lint's unordered-iter
// audit: the dominant-region election used to walk an unordered_map, so a
// tie between two regions was broken by bucket order — which depends on
// the standard library, not the input.  The tally now goes through a
// sorted map: a tie must elect the smallest region id regardless of the
// order the blocks were dispatched in.
TEST(RegionSamplerTest, DominantRegionTieBreaksToSmallestIdDeterministically) {
  profile::LaunchProfile launch;
  launch.blocks.assign(20, profile::BlockStats{.thread_insts = 3200,
                                               .warp_insts = 100,
                                               .mem_requests = 20});
  const RegionTable table(
      20, {HomogeneousRegion{.region_id = 0, .start_block = 0, .end_block = 9},
           HomogeneousRegion{.region_id = 1, .start_block = 10, .end_block = 19}});
  RegionSamplerOptions options;
  options.entry_fraction = 0.5;  // a 2-of-4 tie is enough to enter

  const std::vector<std::vector<std::uint32_t>> dispatch_orders = {
      {0, 1, 10, 11},
      {10, 11, 0, 1},
      {10, 0, 11, 1},
  };
  for (const auto& order : dispatch_orders) {
    RegionSampler sampler(launch, table, options);
    for (const std::uint32_t block : order) {
      (void)sampler.on_block_dispatch(block, block);
    }
    EXPECT_EQ(sampler.state(), RegionSampler::State::kWarming);
    EXPECT_EQ(sampler.current_region(), 0)
        << "tie must resolve to the smallest region id for every "
           "dispatch order";
  }
}

}  // namespace
}  // namespace tbp::core
