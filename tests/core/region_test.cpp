#include "core/region.hpp"

#include <gtest/gtest.h>

namespace tbp::core {
namespace {

profile::BlockStats block(std::uint64_t warp_insts, std::uint64_t mem_requests) {
  return profile::BlockStats{.thread_insts = warp_insts * 32,
                             .warp_insts = warp_insts,
                             .mem_requests = mem_requests};
}

/// n_epochs of `occ` blocks each, all with stall probability `p`.
void append_epochs(profile::LaunchProfile& launch, std::size_t n_epochs,
                   std::uint32_t occ, double p) {
  for (std::size_t e = 0; e < n_epochs; ++e) {
    for (std::uint32_t b = 0; b < occ; ++b) {
      launch.blocks.push_back(
          block(100, static_cast<std::uint64_t>(100 * p)));
    }
  }
}

TEST(RegionTableTest, LookupAndCoverage) {
  RegionTable table(
      10, {HomogeneousRegion{.region_id = 0, .start_block = 2, .end_block = 5},
           HomogeneousRegion{.region_id = 1, .start_block = 7, .end_block = 9}});
  EXPECT_EQ(table.region_of(0), RegionTable::kNoRegion);
  EXPECT_EQ(table.region_of(2), 0);
  EXPECT_EQ(table.region_of(5), 0);
  EXPECT_EQ(table.region_of(6), RegionTable::kNoRegion);
  EXPECT_EQ(table.region_of(7), 1);
  EXPECT_EQ(table.region_of(9), 1);
  EXPECT_EQ(table.region_of(99), RegionTable::kNoRegion);  // out of range
  EXPECT_EQ(table.blocks_in_regions(), 7u);
}

TEST(RegionIdentificationTest, UniformLaunchIsOneRegion) {
  profile::LaunchProfile launch;
  append_epochs(launch, 10, 4, 0.2);
  const RegionIdentification id = identify_regions(launch, 4);
  ASSERT_EQ(id.table.regions().size(), 1u);
  EXPECT_EQ(id.table.regions()[0].start_block, 0u);
  EXPECT_EQ(id.table.regions()[0].end_block, 39u);
  EXPECT_EQ(id.table.regions()[0].n_epochs, 10u);
}

TEST(RegionIdentificationTest, TwoPhasesMakeTwoRegions) {
  // The paper's Fig. 6 structure: stall probability 0.2 then 0.5.
  profile::LaunchProfile launch;
  append_epochs(launch, 5, 4, 0.2);
  append_epochs(launch, 5, 4, 0.5);
  const RegionIdentification id = identify_regions(launch, 4);
  ASSERT_EQ(id.table.regions().size(), 2u);
  EXPECT_EQ(id.table.regions()[0].end_block, 19u);
  EXPECT_EQ(id.table.regions()[1].start_block, 20u);
  EXPECT_NE(id.table.regions()[0].region_id, id.table.regions()[1].region_id);
}

TEST(RegionIdentificationTest, SimilarStallProbabilitiesMergeWithinThreshold) {
  // 0.20 vs 0.25 is inside sigma = 0.2 for the 1-D intra vectors.
  profile::LaunchProfile launch;
  append_epochs(launch, 5, 4, 0.20);
  append_epochs(launch, 5, 4, 0.25);
  const RegionIdentification id = identify_regions(launch, 4);
  EXPECT_EQ(id.table.regions().size(), 1u);
}

TEST(RegionIdentificationTest, OutlierEpochBreaksRegion) {
  profile::LaunchProfile launch;
  append_epochs(launch, 4, 4, 0.2);
  // One epoch with an mst-style outlier block: same p, 16x the size.
  launch.blocks.push_back(block(1600, 320));
  launch.blocks.push_back(block(100, 20));
  launch.blocks.push_back(block(100, 20));
  launch.blocks.push_back(block(100, 20));
  append_epochs(launch, 4, 4, 0.2);
  const RegionIdentification id = identify_regions(launch, 4);
  ASSERT_EQ(id.epochs.size(), 9u);
  EXPECT_TRUE(id.epoch_is_outlier[4]);
  // Two regions of 4 epochs, with the flagged epoch outside both.
  ASSERT_EQ(id.table.regions().size(), 2u);
  for (std::uint32_t b = 16; b < 20; ++b) {
    EXPECT_EQ(id.table.region_of(b), RegionTable::kNoRegion);
  }
}

TEST(RegionIdentificationTest, ShortRunsAreDiscarded) {
  // Alternating phases of 2 epochs never reach min_region_epochs = 3.
  profile::LaunchProfile launch;
  for (int i = 0; i < 4; ++i) {
    append_epochs(launch, 2, 4, 0.1);
    append_epochs(launch, 2, 4, 0.9);
  }
  const RegionIdentification id = identify_regions(launch, 4);
  EXPECT_TRUE(id.table.regions().empty());
}

TEST(RegionIdentificationTest, MinRegionEpochsConfigurable) {
  profile::LaunchProfile launch;
  for (int i = 0; i < 4; ++i) {
    append_epochs(launch, 2, 4, 0.1);
    append_epochs(launch, 2, 4, 0.9);
  }
  IntraLaunchOptions options;
  options.min_region_epochs = 2;
  const RegionIdentification id = identify_regions(launch, 4, options);
  EXPECT_EQ(id.table.regions().size(), 8u);
}

TEST(RegionIdentificationTest, RegionsNeverOverlapAndStayInBounds) {
  profile::LaunchProfile launch;
  append_epochs(launch, 3, 5, 0.1);
  append_epochs(launch, 4, 5, 0.6);
  append_epochs(launch, 3, 5, 0.1);
  const RegionIdentification id = identify_regions(launch, 5);
  const auto n_blocks = static_cast<std::uint32_t>(launch.blocks.size());
  std::uint32_t last_end = 0;
  bool first = true;
  for (const HomogeneousRegion& r : id.table.regions()) {
    EXPECT_LE(r.start_block, r.end_block);
    EXPECT_LT(r.end_block, n_blocks);
    if (!first) {
      EXPECT_GT(r.start_block, last_end);
    }
    last_end = r.end_block;
    first = false;
  }
}

TEST(RegionIdentificationTest, DistanceThresholdControlsMerging) {
  profile::LaunchProfile launch;
  append_epochs(launch, 5, 4, 0.2);
  append_epochs(launch, 5, 4, 0.5);
  IntraLaunchOptions loose;
  loose.distance_threshold = 0.5;
  const RegionIdentification id = identify_regions(launch, 4, loose);
  EXPECT_EQ(id.table.regions().size(), 1u);  // 0.3 apart merges at sigma 0.5
}

TEST(RegionIdentificationTest, EmptyLaunch) {
  profile::LaunchProfile launch;
  const RegionIdentification id = identify_regions(launch, 4);
  EXPECT_TRUE(id.epochs.empty());
  EXPECT_TRUE(id.table.regions().empty());
}

}  // namespace
}  // namespace tbp::core
