// Property sweep of the full TBPoint pipeline on randomized multi-launch
// applications: accounting identities, monotonicity of the sampling knobs,
// and accuracy bounds that must hold for any draw.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/tbpoint.hpp"
#include "profile/profiler.hpp"
#include "sim/gpu.hpp"
#include "stats/rng.hpp"
#include "trace/generator.hpp"

namespace tbp::core {
namespace {

struct RandomApp {
  std::vector<std::unique_ptr<trace::SyntheticLaunch>> launches;
  profile::ApplicationProfile profile;
  sim::GpuConfig config;

  [[nodiscard]] std::vector<const trace::LaunchTraceSource*> sources() const {
    std::vector<const trace::LaunchTraceSource*> out;
    for (const auto& l : launches) out.push_back(l.get());
    return out;
  }
};

RandomApp draw(std::uint64_t seed) {
  stats::Rng rng(seed);
  RandomApp app;
  app.config = sim::fermi_config();
  app.config.n_sms = static_cast<std::uint32_t>(2 + rng.below(4));

  const std::size_t n_phases = 1 + rng.below(3);
  std::vector<trace::BlockBehavior> phase_behaviors(n_phases);
  for (auto& b : phase_behaviors) {
    b.loop_iterations = 3 + static_cast<std::uint32_t>(rng.below(8));
    b.alu_per_iteration = 2 + static_cast<std::uint32_t>(rng.below(5));
    b.mem_per_iteration = static_cast<std::uint32_t>(rng.below(3));
    b.stores_per_iteration = 1;
    b.lines_per_access = static_cast<std::uint8_t>(1 + rng.below(4));
    b.pattern = static_cast<trace::AddressPattern>(rng.below(3));
    b.working_set_lines = 1u << (10 + rng.below(4));
  }

  const std::size_t n_launches = 2 + rng.below(6);
  for (std::size_t l = 0; l < n_launches; ++l) {
    const trace::BlockBehavior behavior = phase_behaviors[l % n_phases];
    // Launches span several occupancy generations; far smaller launches
    // are fill/drain-dominated, a regime where steady-state extrapolation
    // is inherently biased (the paper's kernels are thousands of blocks).
    const auto n_blocks = static_cast<std::uint32_t>(120 + rng.below(300));
    app.launches.push_back(std::make_unique<trace::SyntheticLaunch>(
        trace::make_synthetic_kernel_info("prop"), n_blocks,
        seed ^ (l % n_phases),  // same-phase launches share traces
        [behavior](std::uint32_t) { return behavior; }));
    app.profile.launches.push_back(
        profile::profile_launch(*app.launches.back()));
  }
  return app;
}

class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineProperty, AccountingIdentity) {
  const RandomApp app = draw(GetParam());
  const TBPointRun run = run_tbpoint(app.sources(), app.profile, app.config, {});
  EXPECT_EQ(run.app.simulated_warp_insts + run.app.skipped_inter_warp_insts +
                run.app.skipped_intra_warp_insts,
            run.app.total_warp_insts);
  EXPECT_GT(run.app.sample_fraction(), 0.0);
  EXPECT_LE(run.app.sample_fraction(), 1.0 + 1e-12);
}

TEST_P(PipelineProperty, EveryClusterHasOneRepresentativeRun) {
  const RandomApp app = draw(GetParam());
  const TBPointRun run = run_tbpoint(app.sources(), app.profile, app.config, {});
  EXPECT_EQ(run.reps.size(), run.inter.clusters.size());
  for (std::size_t c = 0; c < run.reps.size(); ++c) {
    EXPECT_EQ(run.reps[c].launch_index, run.inter.representatives[c]);
    EXPECT_LE(run.reps[c].prediction.sample_fraction(), 1.0 + 1e-12);
  }
}

TEST_P(PipelineProperty, PredictionTracksFullSimulation) {
  const RandomApp app = draw(GetParam());
  const TBPointRun run = run_tbpoint(app.sources(), app.profile, app.config, {});

  sim::GpuSimulator simulator(app.config);
  std::uint64_t cycles = 0;
  std::uint64_t insts = 0;
  for (const auto* source : app.sources()) {
    const sim::LaunchResult full = simulator.run_launch(*source);
    cycles += full.cycles;
    insts += full.sim_warp_insts;
  }
  const double full_ipc = static_cast<double>(insts) / static_cast<double>(cycles);
  // Generous bound: any draw must stay within 20% (typical draws are <2%;
  // the paper's own hardware sweep sees errors up to 14%).
  EXPECT_NEAR(run.app.predicted_ipc, full_ipc, 0.20 * full_ipc);
}

TEST_P(PipelineProperty, IntraSamplingNeverSimulatesMoreThanFull) {
  const RandomApp app = draw(GetParam());
  TBPointOptions with_intra;
  TBPointOptions without_intra;
  without_intra.enable_intra = false;
  const TBPointRun a =
      run_tbpoint(app.sources(), app.profile, app.config, with_intra);
  const TBPointRun b =
      run_tbpoint(app.sources(), app.profile, app.config, without_intra);
  EXPECT_LE(a.app.simulated_warp_insts, b.app.simulated_warp_insts);
}

TEST_P(PipelineProperty, LooserInterThresholdNeverAddsClusters) {
  const RandomApp app = draw(GetParam());
  TBPointOptions tight;
  tight.inter.distance_threshold = 0.01;
  TBPointOptions loose;
  loose.inter.distance_threshold = 0.5;
  const TBPointRun a = run_tbpoint(app.sources(), app.profile, app.config, tight);
  const TBPointRun b = run_tbpoint(app.sources(), app.profile, app.config, loose);
  EXPECT_GE(a.inter.clusters.size(), b.inter.clusters.size());
}

INSTANTIATE_TEST_SUITE_P(RandomApps, PipelineProperty,
                         ::testing::Range<std::uint64_t>(100, 108));

}  // namespace
}  // namespace tbp::core
