#include "support/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace tbp::par {
namespace {

TEST(ParallelTest, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(default_jobs(), 1u);
  EXPECT_GE(global_jobs(), 1u);
}

// ---- ThreadPool ----

TEST(ThreadPoolTest, SpawnsAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 1u);
  ThreadPool pool4(4);
  EXPECT_EQ(pool4.workers(), 4u);
}

TEST(ThreadPoolTest, SubmitReturnsResultsThroughFutures) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_THROW((void)future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.enqueue([&ran]() { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 50);
}

// ---- parallel_for ----

TEST(ParallelForTest, ZeroIterationsIsANoOp) {
  bool touched = false;
  parallel_for(0, 8, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelForTest, SingleIterationRunsInline) {
  std::size_t seen = 99;
  parallel_for(1, 8, [&](std::size_t i) { seen = i; });
  EXPECT_EQ(seen, 0u);
}

TEST(ParallelForTest, EveryIndexRunsExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  parallel_for(kN, 8, [&](std::size_t i) { counts[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, SlotCollectionMatchesSerialRun) {
  // The determinism contract: slot-indexed collection + serial reduction is
  // identical for every jobs value.
  constexpr std::size_t kN = 257;
  const auto compute = [](std::size_t i) {
    double x = static_cast<double>(i) + 0.5;
    for (int k = 0; k < 50; ++k) x = x * 1.0000001 + 0.25;
    return x;
  };
  std::vector<double> serial(kN), parallel(kN);
  parallel_for(kN, 1, [&](std::size_t i) { serial[i] = compute(i); });
  parallel_for(kN, 8, [&](std::size_t i) { parallel[i] = compute(i); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "slot " << i;  // bit-identical
  }
  const double serial_sum = std::accumulate(serial.begin(), serial.end(), 0.0);
  const double parallel_sum =
      std::accumulate(parallel.begin(), parallel.end(), 0.0);
  EXPECT_EQ(serial_sum, parallel_sum);
}

TEST(ParallelForTest, RethrowsTaskException) {
  EXPECT_THROW(
      parallel_for(100, 4,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("iteration 37");
                   }),
      std::runtime_error);
}

TEST(ParallelForTest, ExceptionSkipsRemainingIterations) {
  // After a failure, unstarted iterations are skipped — the loop finishes
  // promptly instead of running the full space.
  std::atomic<std::size_t> executed{0};
  try {
    parallel_for(100000, 4, [&](std::size_t) {
      executed.fetch_add(1);
      throw std::runtime_error("fail fast");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_LT(executed.load(), 100000u);
}

TEST(ParallelForTest, NestedParallelForDoesNotDeadlock) {
  // Callers participate in their own batch, so an inner parallel_for on a
  // saturated pool still makes progress.
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 16;
  std::vector<std::atomic<int>> counts(kOuter * kInner);
  parallel_for(kOuter, 8, [&](std::size_t o) {
    parallel_for(kInner, 8, [&](std::size_t i) {
      counts[o * kInner + i].fetch_add(1);
    });
  });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "slot " << i;
  }
}

TEST(ParallelForTest, JobsLargerThanIterationCountIsSafe) {
  std::vector<int> slots(3, 0);
  parallel_for(slots.size(), 64, [&](std::size_t i) {
    slots[i] = static_cast<int>(i) + 1;
  });
  EXPECT_EQ(slots, (std::vector<int>{1, 2, 3}));
}

TEST(ParallelTest, SetGlobalJobsResizesThePool) {
  set_global_jobs(4);
  EXPECT_EQ(global_jobs(), 4u);
  // jobs-1 workers: the calling thread is the fourth executor.
  EXPECT_EQ(global_pool().workers(), 3u);
  set_global_jobs(1);
  EXPECT_EQ(global_jobs(), 1u);
}

}  // namespace
}  // namespace tbp::par
