// The wall-clock doorway's contract: monotonic_seconds never runs
// backwards, WallTimer's elapsed reading is non-negative and monotone, and
// restart() rewinds the stopwatch.  These are the only properties the
// profiling layer relies on — everything downstream (spans, skew, latency
// histograms) is differences of these readings.
#include <gtest/gtest.h>

#include "support/walltime.hpp"

namespace tbp::timing {
namespace {

TEST(WalltimeTest, MonotonicSecondsNeverDecreases) {
  double prev = monotonic_seconds();
  for (int i = 0; i < 10000; ++i) {
    const double now = monotonic_seconds();
    ASSERT_GE(now, prev) << "clock ran backwards on read " << i;
    prev = now;
  }
}

TEST(WalltimeTest, TimerElapsedIsNonNegativeAndMonotone) {
  WallTimer timer;
  double prev = timer.seconds();
  EXPECT_GE(prev, 0.0);
  for (int i = 0; i < 1000; ++i) {
    const double now = timer.seconds();
    ASSERT_GE(now, prev) << "elapsed time shrank on read " << i;
    prev = now;
  }
}

TEST(WalltimeTest, RestartRewindsTheStopwatch) {
  WallTimer timer;
  // Burn a little real time so the pre-restart reading is visibly ahead.
  volatile double sink = 0.0;
  for (int i = 0; i < 200000; ++i) sink = sink + 1.0;
  const double before = timer.seconds();
  timer.restart();
  const double after = timer.seconds();
  EXPECT_GE(after, 0.0);
  EXPECT_LE(after, before)
      << "restart() must reset the epoch to now, not keep the old one";
}

TEST(WalltimeTest, TimerMeasuresRealElapsedTime) {
  const double t0 = monotonic_seconds();
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 200000; ++i) sink = sink + 1.0;
  const double elapsed = timer.seconds();
  const double span = monotonic_seconds() - t0;
  // The timer's window is contained in the outer monotonic window.
  EXPECT_LE(elapsed, span + 1e-9);
}

}  // namespace
}  // namespace tbp::timing
