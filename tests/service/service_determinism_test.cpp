// Service determinism: the daemon's responses are byte-identical no matter
// how its work is parallelized — across request groups (--jobs) and inside
// each launch simulation (--sim-jobs).  Two daemons with different worker
// budgets drain the same batch into separate spools; every response file
// must match byte for byte.  `parallel` ctest label (see tests/CMakeLists).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "service/daemon.hpp"
#include "service/request.hpp"
#include "service/spool.hpp"

namespace tbp::service {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

TEST(ServiceDeterminismTest, ResponsesAreJobsIndependent) {
  // Two distinct cheap specs plus a duplicate, so the drain exercises both
  // the cross-group parallel_for and the dedup path.
  RequestSpec a;
  a.workload = "stream";
  a.scale.divisor = 48;
  a.sms = 4;
  RequestSpec b = a;
  b.scale.divisor = 96;
  const std::vector<std::pair<std::string, std::string>> batch = {
      {"req-a1", spec_canonical_line(a)},
      {"req-a2", spec_canonical_line(a)},
      {"req-b1", spec_canonical_line(b)},
  };

  const auto drain = [&](const std::string& spool_name, std::size_t jobs,
                         std::uint32_t sim_jobs) {
    const fs::path spool = fresh_dir(spool_name);
    DaemonOptions options;
    options.spool_dir = spool;
    options.jobs = jobs;
    options.sim_jobs = sim_jobs;
    Daemon daemon(options);
    EXPECT_TRUE(daemon.open().ok());
    for (const auto& [id, line] : batch) {
      EXPECT_TRUE(submit_request(spool, id, line).ok());
    }
    const auto answered = daemon.drain_once();
    EXPECT_TRUE(answered.has_value());
    std::vector<std::string> responses;
    for (const auto& [id, line] : batch) {
      const auto bytes = try_read_response(spool, id);
      EXPECT_TRUE(bytes.has_value()) << id;
      responses.push_back(bytes.has_value() ? *bytes : std::string());
    }
    return responses;
  };

  const std::vector<std::string> serial = drain("tbp_sdet_serial", 1, 1);
  const std::vector<std::string> threaded = drain("tbp_sdet_threaded", 4, 2);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(response_error(serial[i]).ok()) << batch[i].first;
    EXPECT_EQ(serial[i], threaded[i])
        << "response for " << batch[i].first
        << " differs between jobs=1/sim_jobs=1 and jobs=4/sim_jobs=2";
  }
  // The duplicate collapsed to its twin's bytes in both drains.
  EXPECT_EQ(serial[0], serial[1]);
}

}  // namespace
}  // namespace tbp::service
