// tbpointd service suite: strict request admission, the spool protocol's
// state machine, and the daemon's dedup contract — a cold batch of N
// identical requests costs exactly one simulation, leaves the store hit
// counter at N-1, and answers every client with bytes identical to what
// `tbpoint_cli compare ... --manifest` writes for the same spec.
#include "service/daemon.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "service/request.hpp"
#include "service/spool.hpp"
#include "store/key.hpp"

namespace tbp::service {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

/// The smallest spec a full four-way comparison answers quickly: stream at
/// 1/48 scale on a 4-SM machine (the service tests must simulate a couple
/// of times, so the workload has to be cheap).
RequestSpec small_spec() {
  RequestSpec spec;
  spec.workload = "stream";
  spec.scale.divisor = 48;
  spec.sms = 4;
  return spec;
}

// ---- request parsing ----

TEST(RequestTest, MinimalLineFillsDefaults) {
  const auto spec =
      parse_request(R"({"schema":"tbp-request-v1","workload":"stream"})");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->workload, "stream");
  EXPECT_EQ(spec->scale.divisor, 4u);
  EXPECT_EQ(spec->scale.seed, 0x7b90147u);
  EXPECT_EQ(spec->sms, 14u);
  EXPECT_EQ(spec->warps, 48u);
  EXPECT_FALSE(spec->gto);
}

TEST(RequestTest, CanonicalLineIsPinnedAndAFixpoint) {
  RequestSpec spec;
  spec.workload = "stream";
  // Every field explicit, keys alphabetical, no whitespace: this line is
  // the dedup fingerprint and (hashed) the store address, so its bytes are
  // part of the protocol.
  const std::string expected =
      R"({"command":"compare","gto":false,"scale_divisor":4,)"
      R"("schema":"tbp-request-v1","seed":129564999,"sms":14,"warps":48,)"
      R"("workload":"stream"})";
  EXPECT_EQ(spec_canonical_line(spec), expected);

  // Canonicalization is a fixpoint: parsing the canonical line and
  // re-canonicalizing reproduces it byte for byte.
  const auto reparsed = parse_request(expected);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(spec_canonical_line(*reparsed), expected);
}

TEST(RequestTest, UnknownKeyRejected) {
  const auto spec = parse_request(
      R"({"schema":"tbp-request-v1","workload":"stream","threads":8})");
  ASSERT_FALSE(spec.has_value());
  EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
}

TEST(RequestTest, WrongSchemaIsVersionMismatch) {
  const auto spec =
      parse_request(R"({"schema":"tbp-request-v2","workload":"stream"})");
  ASSERT_FALSE(spec.has_value());
  EXPECT_EQ(spec.status().code(), StatusCode::kVersionMismatch);
}

TEST(RequestTest, StrictnessRejectsEveryMalformedShape) {
  const std::vector<std::string> bad = {
      "not json at all",
      "[1,2,3]",                                                  // not object
      R"({"workload":"stream"})",                                 // no schema
      R"({"schema":"tbp-request-v1"})",                           // no workload
      R"({"schema":"tbp-request-v1","workload":"nope"})",         // unknown wl
      R"({"schema":"tbp-request-v1","workload":7})",              // wl type
      R"({"schema":"tbp-request-v1","workload":"stream","command":"run"})",
      R"({"schema":"tbp-request-v1","workload":"stream","seed":-1})",
      R"({"schema":"tbp-request-v1","workload":"stream","seed":1.5})",
      R"({"schema":"tbp-request-v1","workload":"stream","scale_divisor":0})",
      R"({"schema":"tbp-request-v1","workload":"stream","sms":0})",
      R"({"schema":"tbp-request-v1","workload":"stream","sms":2000})",
      R"({"schema":"tbp-request-v1","workload":"stream","warps":0})",
      R"({"schema":"tbp-request-v1","workload":"stream","gto":"yes"})",
  };
  for (const std::string& line : bad) {
    const auto spec = parse_request(line);
    EXPECT_FALSE(spec.has_value()) << "accepted: " << line;
    if (!spec.has_value()) {
      EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument) << line;
    }
  }
}

TEST(RequestTest, StoreKeyTracksTheSpec) {
  const RequestSpec base = small_spec();
  RequestSpec other = base;
  other.scale.divisor = 96;
  EXPECT_NE(spec_store_key(base).id, spec_store_key(other).id);
  EXPECT_EQ(spec_store_key(base).id, spec_store_key(small_spec()).id);
  EXPECT_EQ(spec_store_key(base).label, "stream-d48-sms4-w48");
  RequestSpec gto = base;
  gto.gto = true;
  EXPECT_EQ(spec_store_key(gto).label, "stream-d48-sms4-w48-gto");
  EXPECT_NE(spec_store_key(gto).id, spec_store_key(base).id);
}

// ---- spool protocol ----

TEST(SpoolTest, RequestIdValidation) {
  EXPECT_TRUE(valid_request_id("req-1"));
  EXPECT_TRUE(valid_request_id("a1b2c3-p77-0.retry"));
  EXPECT_FALSE(valid_request_id(""));
  EXPECT_FALSE(valid_request_id(".hidden"));
  EXPECT_FALSE(valid_request_id("has space"));
  EXPECT_FALSE(valid_request_id("../escape"));
  EXPECT_FALSE(valid_request_id(std::string(201, 'x')));
}

TEST(SpoolTest, StateMachineRoundTrip) {
  const fs::path root = fresh_dir("tbp_spool_roundtrip");
  ASSERT_TRUE(init_spool(root).ok());

  // submitted: the request sits in the inbox.
  ASSERT_TRUE(submit_request(root, "req-1", "the request line").ok());
  const auto pending = pending_requests(root);
  ASSERT_TRUE(pending.has_value());
  EXPECT_EQ(*pending, std::vector<std::string>{"req-1"});
  EXPECT_TRUE(fs::exists(request_path(root, "req-1")));

  // claimed: exactly one rename moves it out of the inbox.
  const auto line = claim_request(root, "req-1");
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "the request line");
  EXPECT_FALSE(fs::exists(request_path(root, "req-1")));
  EXPECT_TRUE(fs::exists(claimed_path(root, "req-1")));
  // A second (racing) claim of the same id loses cleanly.
  EXPECT_EQ(claim_request(root, "req-1").status().code(),
            StatusCode::kNotFound);

  // responded: response before the claim marker goes, so a crash between
  // the two leaves a re-queueable marker, never a lost answer.
  EXPECT_EQ(try_read_response(root, "req-1").status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(write_response(root, "req-1", "the response bytes").ok());
  ASSERT_TRUE(finish_request(root, "req-1").ok());
  EXPECT_FALSE(fs::exists(claimed_path(root, "req-1")));
  const auto response = try_read_response(root, "req-1");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(*response, "the response bytes");
}

TEST(SpoolTest, PendingIgnoresTempAndForeignFiles) {
  const fs::path root = fresh_dir("tbp_spool_pending");
  ASSERT_TRUE(init_spool(root).ok());
  ASSERT_TRUE(submit_request(root, "b-second", "x").ok());
  ASSERT_TRUE(submit_request(root, "a-first", "x").ok());
  std::ofstream(root / "requests" / "stray.req.tmp.1.2") << "torn";
  std::ofstream(root / "requests" / "notes.md") << "not a request";
  const auto pending = pending_requests(root);
  ASSERT_TRUE(pending.has_value());
  EXPECT_EQ(*pending, (std::vector<std::string>{"a-first", "b-second"}));
}

TEST(SpoolTest, ErrorResponseRoundTrips) {
  const std::string doc =
      error_response(Status(StatusCode::kVersionMismatch, "bad schema tag"));
  const Status carried = response_error(doc);
  ASSERT_FALSE(carried.ok());
  EXPECT_EQ(carried.code(), StatusCode::kVersionMismatch);
  EXPECT_EQ(carried.message(), "bad schema tag");
  // A result manifest is not an error document.
  EXPECT_TRUE(response_error("{\"schema\":\"tbp-manifest-v1\"}").ok());
}

// ---- the daemon ----

TEST(ServiceTest, ColdDuplicateBatchCostsOneSimulation) {
  const fs::path spool = fresh_dir("tbp_service_dedup");
  const RequestSpec dup = small_spec();
  RequestSpec distinct = small_spec();
  distinct.scale.divisor = 96;

  DaemonOptions options;
  options.spool_dir = spool;
  options.jobs = 2;
  Daemon daemon(options);
  ASSERT_TRUE(daemon.open().ok());

  const std::string dup_line = spec_canonical_line(dup);
  for (const std::string id : {"dup-1", "dup-2", "dup-3", "dup-4"}) {
    ASSERT_TRUE(submit_request(spool, id, dup_line).ok());
  }
  ASSERT_TRUE(
      submit_request(spool, "distinct-1", spec_canonical_line(distinct)).ok());

  const std::size_t invocations_before = harness::run_comparison_invocations();
  const auto answered = daemon.drain_once();
  ASSERT_TRUE(answered.has_value());
  EXPECT_EQ(*answered, 5u);

  // The dedup proof: 5 requests, 2 distinct specs, exactly 2 simulations.
  EXPECT_EQ(harness::run_comparison_invocations() - invocations_before, 2u);
  const ServiceStats stats = daemon.stats();
  EXPECT_EQ(stats.claimed, 5u);
  EXPECT_EQ(stats.deduped, 3u);
  EXPECT_EQ(stats.simulations, 2u);
  EXPECT_EQ(stats.responses, 5u);
  EXPECT_EQ(stats.malformed, 0u);
  // Duplicates 2..4 were served by store reads: hits == N-1.
  const store::StoreStats store_stats = daemon.response_store().stats();
  EXPECT_EQ(store_stats.hits, 3u);
  EXPECT_EQ(store_stats.misses, 2u);  // one cold probe per group
  EXPECT_EQ(store_stats.puts, 2u);

  // Every duplicate got byte-identical bytes, and those bytes are exactly
  // the direct-computation manifest (what tbpoint_cli --manifest writes).
  const auto first = try_read_response(spool, "dup-1");
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(response_error(*first).ok());
  for (const std::string id : {"dup-2", "dup-3", "dup-4"}) {
    const auto other = try_read_response(spool, id);
    ASSERT_TRUE(other.has_value());
    EXPECT_EQ(*other, *first) << id;
  }
  const harness::ExperimentRow row = run_spec(dup, 1, 1);
  EXPECT_EQ(*first, spec_manifest_bytes(dup, row));
  const auto distinct_response = try_read_response(spool, "distinct-1");
  ASSERT_TRUE(distinct_response.has_value());
  EXPECT_NE(*distinct_response, *first);

  // A later duplicate is answered straight from the store: no simulation.
  ASSERT_TRUE(submit_request(spool, "dup-5", dup_line).ok());
  const auto warm = daemon.drain_once();
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(*warm, 1u);
  EXPECT_EQ(daemon.stats().simulations, 2u);
  const auto warm_response = try_read_response(spool, "dup-5");
  ASSERT_TRUE(warm_response.has_value());
  EXPECT_EQ(*warm_response, *first);
  // The spool is fully drained: no claimed markers left behind.
  EXPECT_TRUE(fs::is_empty(spool / "claimed"));
  EXPECT_TRUE(fs::is_empty(spool / "requests"));
}

TEST(ServiceTest, MalformedRequestsGetErrorResponsesAndServiceContinues) {
  const fs::path spool = fresh_dir("tbp_service_malformed");
  DaemonOptions options;
  options.spool_dir = spool;
  Daemon daemon(options);
  ASSERT_TRUE(daemon.open().ok());

  ASSERT_TRUE(submit_request(spool, "bad-json", "{{{not json").ok());
  ASSERT_TRUE(submit_request(
                  spool, "bad-workload",
                  R"({"schema":"tbp-request-v1","workload":"nope"})")
                  .ok());
  ASSERT_TRUE(submit_request(
                  spool, "bad-schema",
                  R"({"schema":"tbp-request-v9","workload":"stream"})")
                  .ok());

  const std::size_t invocations_before = harness::run_comparison_invocations();
  const auto answered = daemon.drain_once();
  ASSERT_TRUE(answered.has_value());
  EXPECT_EQ(*answered, 3u);
  EXPECT_EQ(daemon.stats().malformed, 3u);
  EXPECT_EQ(daemon.stats().simulations, 0u);
  EXPECT_EQ(harness::run_comparison_invocations(), invocations_before);

  // Every client got a structured answer, not a hang.
  const auto bad_json = try_read_response(spool, "bad-json");
  ASSERT_TRUE(bad_json.has_value());
  EXPECT_EQ(response_error(*bad_json).code(), StatusCode::kInvalidArgument);
  const auto bad_schema = try_read_response(spool, "bad-schema");
  ASSERT_TRUE(bad_schema.has_value());
  EXPECT_EQ(response_error(*bad_schema).code(), StatusCode::kVersionMismatch);
  EXPECT_TRUE(fs::is_empty(spool / "claimed"));
}

TEST(ServiceTest, ServeHonorsMaxRequests) {
  const fs::path spool = fresh_dir("tbp_service_serve");
  DaemonOptions options;
  options.spool_dir = spool;
  options.poll_ms = 1;
  options.max_requests = 2;
  Daemon daemon(options);
  ASSERT_TRUE(daemon.open().ok());
  ASSERT_TRUE(submit_request(spool, "m-1", "garbage one").ok());
  ASSERT_TRUE(submit_request(spool, "m-2", "garbage two").ok());

  std::atomic<bool> stop{false};
  ASSERT_TRUE(daemon.serve(stop).ok());  // returns once both are answered
  EXPECT_EQ(daemon.stats().responses, 2u);
  EXPECT_TRUE(try_read_response(spool, "m-1").has_value());
  EXPECT_TRUE(try_read_response(spool, "m-2").has_value());
}

}  // namespace
}  // namespace tbp::service
