#include "trace/generator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "trace/kernel.hpp"
#include "trace/validate.hpp"

namespace tbp::trace {
namespace {

BlockBehavior simple_behavior() {
  BlockBehavior b;
  b.loop_iterations = 5;
  b.alu_per_iteration = 3;
  b.sfu_per_iteration = 0;
  b.mem_per_iteration = 2;
  b.stores_per_iteration = 1;
  b.shared_per_iteration = 0;
  b.branch_divergence = 0.0;
  b.lines_per_access = 4;
  b.pattern = AddressPattern::kStreaming;
  return b;
}

SyntheticLaunch make_simple_launch(std::uint32_t n_blocks = 4,
                                   BlockBehavior behavior = simple_behavior(),
                                   std::uint64_t seed = 123) {
  return SyntheticLaunch(make_synthetic_kernel_info("test"), n_blocks, seed,
                         [behavior](std::uint32_t) { return behavior; });
}

TEST(GeneratorTest, WarpCountMatchesKernelInfo) {
  const SyntheticLaunch launch = make_simple_launch();
  const BlockTrace trace = launch.block_trace(0);
  EXPECT_EQ(trace.warps.size(), 8u);  // 256 threads / 32
}

TEST(GeneratorTest, InstructionCountMatchesBehaviorArithmetic) {
  const SyntheticLaunch launch = make_simple_launch();
  const BlockTrace trace = launch.block_trace(1);
  // Per warp: 2 prologue + 5 * (3 alu + 2 loads + 1 store) + epilogue + exit.
  const std::size_t expected_per_warp = 2 + 5 * (3 + 2 + 1) + 1 + 1;
  for (const auto& stream : trace.warps) {
    EXPECT_EQ(stream.size(), expected_per_warp);
  }
  EXPECT_EQ(trace.warp_inst_count(), expected_per_warp * 8);
}

TEST(GeneratorTest, MemoryRequestCountUsesCoalescingDegree) {
  const SyntheticLaunch launch = make_simple_launch();
  const BlockTrace trace = launch.block_trace(0);
  // 5 iterations * (2 loads + 1 store) * 4 lines * 8 warps.
  EXPECT_EQ(trace.memory_request_count(), 5u * 3u * 4u * 8u);
}

TEST(GeneratorTest, NoDivergenceMeansFullWarps) {
  const SyntheticLaunch launch = make_simple_launch();
  const BlockTrace trace = launch.block_trace(2);
  for (const auto& stream : trace.warps) {
    for (const WarpInst& inst : stream) {
      EXPECT_EQ(inst.active_threads, kWarpSize);
    }
  }
  EXPECT_EQ(trace.thread_inst_count(), trace.warp_inst_count() * kWarpSize);
}

TEST(GeneratorTest, DeterministicAcrossCalls) {
  BlockBehavior behavior = simple_behavior();
  behavior.branch_divergence = 0.3;
  behavior.pattern = AddressPattern::kRandom;
  behavior.working_set_lines = 1024;
  const SyntheticLaunch launch = make_simple_launch(4, behavior);
  const BlockTrace a = launch.block_trace(3);
  const BlockTrace b = launch.block_trace(3);
  ASSERT_EQ(a.warps.size(), b.warps.size());
  for (std::size_t w = 0; w < a.warps.size(); ++w) {
    ASSERT_EQ(a.warps[w].size(), b.warps[w].size());
    for (std::size_t i = 0; i < a.warps[w].size(); ++i) {
      EXPECT_EQ(a.warps[w][i].op, b.warps[w][i].op);
      EXPECT_EQ(a.warps[w][i].active_threads, b.warps[w][i].active_threads);
      EXPECT_EQ(a.warps[w][i].mem.base_line, b.warps[w][i].mem.base_line);
    }
  }
}

TEST(GeneratorTest, DifferentBlocksDifferUnderRandomPattern) {
  BlockBehavior behavior = simple_behavior();
  behavior.pattern = AddressPattern::kRandom;
  behavior.working_set_lines = 1u << 16;
  behavior.region_base_line = 1000;
  const SyntheticLaunch launch = make_simple_launch(4, behavior);
  const BlockTrace a = launch.block_trace(0);
  const BlockTrace b = launch.block_trace(1);
  bool any_different = false;
  for (std::size_t i = 0; i < a.warps[0].size(); ++i) {
    if (a.warps[0][i].mem.base_line != b.warps[0][i].mem.base_line) {
      any_different = true;
      break;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(GeneratorTest, DivergenceAddsWarpInstsNotThreadInsts) {
  BlockBehavior straight = simple_behavior();
  BlockBehavior divergent = simple_behavior();
  divergent.branch_divergence = 1.0;  // every iteration splits

  const SyntheticLaunch a = make_simple_launch(1, straight);
  const SyntheticLaunch b = make_simple_launch(1, divergent);
  const BlockTrace ta = a.block_trace(0);
  const BlockTrace tb = b.block_trace(0);

  // The divergent version re-executes the body for the taken side, growing
  // warp instructions substantially...
  EXPECT_GT(tb.warp_inst_count(), ta.warp_inst_count());
  // ...while thread instructions barely move: the alu/load body covers
  // main + taken = 32 threads across its two copies, and only the stores
  // (which run at reduced width) lose a few lanes.  This is exactly the
  // Eq. 2 signature: control-flow divergence separates the two counts.
  EXPECT_LE(tb.thread_inst_count(), ta.thread_inst_count());
  EXPECT_GT(static_cast<double>(tb.thread_inst_count()),
            0.85 * static_cast<double>(ta.thread_inst_count()));
}

TEST(GeneratorTest, DivergentActiveCountsComplement) {
  BlockBehavior behavior = simple_behavior();
  behavior.branch_divergence = 1.0;
  const SyntheticLaunch launch = make_simple_launch(1, behavior);
  const BlockTrace trace = launch.block_trace(0);
  for (const auto& stream : trace.warps) {
    for (std::size_t i = 0; i < stream.size(); ++i) {
      if (stream[i].bb_id == kBbDivergent && i > 0) {
        // Active threads on both sides of a split sum to a full warp.
        // Find the matching main-path instruction earlier in the body.
        EXPECT_LT(stream[i].active_threads, kWarpSize);
      }
    }
  }
}

TEST(GeneratorTest, StreamingAddressesAdvanceMonotonically) {
  const SyntheticLaunch launch = make_simple_launch();
  const BlockTrace trace = launch.block_trace(0);
  for (const auto& stream : trace.warps) {
    std::uint64_t last = 0;
    for (const WarpInst& inst : stream) {
      if (is_global_memory(inst.op)) {
        EXPECT_GE(inst.mem.base_line, last);
        last = inst.mem.base_line;
      }
    }
  }
}

TEST(GeneratorTest, RandomAddressesStayInWorkingSet) {
  BlockBehavior behavior = simple_behavior();
  behavior.pattern = AddressPattern::kRandom;
  behavior.region_base_line = 5000;
  behavior.working_set_lines = 100;
  const SyntheticLaunch launch = make_simple_launch(2, behavior);
  const BlockTrace trace = launch.block_trace(1);
  for (const auto& stream : trace.warps) {
    for (const WarpInst& inst : stream) {
      if (is_global_memory(inst.op)) {
        EXPECT_GE(inst.mem.base_line, 5000u);
        EXPECT_LT(inst.mem.base_line, 5100u);
      }
    }
  }
}

TEST(GeneratorTest, StridedAddressesUseConfiguredStride) {
  BlockBehavior behavior = simple_behavior();
  behavior.pattern = AddressPattern::kStrided;
  behavior.stride_lines = 48;
  behavior.lines_per_access = 2;
  const SyntheticLaunch launch = make_simple_launch(1, behavior);
  const BlockTrace trace = launch.block_trace(0);
  for (const auto& stream : trace.warps) {
    for (const WarpInst& inst : stream) {
      if (is_global_memory(inst.op)) {
        EXPECT_EQ(inst.mem.line_stride, 48u);
        EXPECT_EQ(inst.mem.n_lines, 2u);
      }
    }
  }
}

TEST(GeneratorTest, WarpsUseDisjointStreamingSlices) {
  // Different warps of a block stream through different address ranges.
  BlockBehavior behavior = simple_behavior();
  behavior.working_set_lines = 1u << 12;
  const SyntheticLaunch launch = make_simple_launch(1, behavior);
  const BlockTrace trace = launch.block_trace(0);
  std::set<std::uint64_t> first_lines;
  for (const auto& stream : trace.warps) {
    for (const WarpInst& inst : stream) {
      if (is_global_memory(inst.op)) {
        first_lines.insert(inst.mem.base_line);
        break;
      }
    }
  }
  EXPECT_EQ(first_lines.size(), trace.warps.size());
}

TEST(GeneratorTest, EveryWarpEndsWithExit) {
  const SyntheticLaunch launch = make_simple_launch();
  const BlockTrace trace = launch.block_trace(0);
  for (const auto& stream : trace.warps) {
    ASSERT_FALSE(stream.empty());
    EXPECT_EQ(stream.back().op, Op::kExit);
    // Exactly one exit per warp.
    int exits = 0;
    for (const WarpInst& inst : stream) exits += inst.op == Op::kExit;
    EXPECT_EQ(exits, 1);
  }
}

TEST(GeneratorTest, BarrierEmittedPerIteration) {
  BlockBehavior behavior = simple_behavior();
  behavior.barrier_per_iteration = true;
  const SyntheticLaunch launch = make_simple_launch(1, behavior);
  const BlockTrace trace = launch.block_trace(0);
  for (const auto& stream : trace.warps) {
    int barriers = 0;
    for (const WarpInst& inst : stream) barriers += inst.op == Op::kBarrier;
    EXPECT_EQ(barriers, 5);
  }
}

TEST(GeneratorTest, SfuInstructionsEmitted) {
  BlockBehavior behavior = simple_behavior();
  behavior.sfu_per_iteration = 2;
  const SyntheticLaunch launch = make_simple_launch(1, behavior);
  const BlockTrace trace = launch.block_trace(0);
  int sfu = 0;
  for (const WarpInst& inst : trace.warps[0]) sfu += inst.op == Op::kSfu;
  EXPECT_EQ(sfu, 10);  // 2 per iteration * 5 iterations
}

// ---- Edge cases the fuzzer's random parameters reach ----

TEST(GeneratorTest, ZeroWorkingSetRandomPatternIsSafe) {
  // working_set_lines == 0 must not divide by zero (per-warp slice size) or
  // call below(0); every random access degenerates to the block base line.
  BlockBehavior behavior = simple_behavior();
  behavior.pattern = AddressPattern::kRandom;
  behavior.working_set_lines = 0;
  behavior.region_base_line = 7777;
  const SyntheticLaunch launch = make_simple_launch(2, behavior);
  const BlockTrace trace = launch.block_trace(1);
  for (const auto& stream : trace.warps) {
    for (const WarpInst& inst : stream) {
      if (is_global_memory(inst.op)) {
        EXPECT_EQ(inst.mem.base_line, 7777u);
      }
    }
  }
  EXPECT_TRUE(validate_block_trace(launch.kernel(), trace).ok());
}

TEST(GeneratorTest, ZeroWorkingSetStreamingPatternIsSafe) {
  BlockBehavior behavior = simple_behavior();
  behavior.pattern = AddressPattern::kStreaming;
  behavior.working_set_lines = 0;
  const SyntheticLaunch launch = make_simple_launch(1, behavior);
  const BlockTrace trace = launch.block_trace(0);
  EXPECT_GT(trace.memory_request_count(), 0u);
  EXPECT_TRUE(validate_block_trace(launch.kernel(), trace).ok());
}

TEST(GeneratorTest, CertainDivergenceSplitsEveryIteration) {
  // branch_divergence == 1.0: the divergent path executes on every
  // iteration, and the split never produces a zero-thread instruction.
  BlockBehavior behavior = simple_behavior();
  behavior.branch_divergence = 1.0;
  const SyntheticLaunch launch = make_simple_launch(1, behavior);
  const BlockTrace trace = launch.block_trace(0);
  for (const auto& stream : trace.warps) {
    std::uint32_t divergent_alu = 0;
    for (const WarpInst& inst : stream) {
      ASSERT_GE(inst.active_threads, 1u);
      ASSERT_LE(inst.active_threads, kWarpSize);
      if (inst.bb_id == kBbDivergent &&
          (inst.op == Op::kIntAlu || inst.op == Op::kFloatAlu)) {
        ++divergent_alu;
      }
    }
    // alu_per_iteration (3) copies per iteration, 5 iterations.
    EXPECT_EQ(divergent_alu, 15u);
  }
  EXPECT_TRUE(validate_block_trace(launch.kernel(), trace).ok());
}

TEST(GeneratorTest, SingleBlockLaunchIsWellFormed) {
  BlockBehavior behavior = simple_behavior();
  behavior.branch_divergence = 1.0;
  behavior.pattern = AddressPattern::kRandom;
  behavior.working_set_lines = 0;  // both edge cases composed
  const SyntheticLaunch launch = make_simple_launch(1, behavior, 991);
  ASSERT_EQ(launch.n_blocks(), 1u);
  const ValidationReport report = validate_launch(launch);
  EXPECT_TRUE(report.ok()) << report.summary();
  const BlockTrace trace = launch.block_trace(0);
  EXPECT_EQ(trace.warps.size(), launch.kernel().warps_per_block());
  for (const auto& stream : trace.warps) {
    ASSERT_FALSE(stream.empty());
    EXPECT_EQ(stream.back().op, Op::kExit);
  }
}

TEST(GeneratorTest, BasicBlockIdsWithinRange) {
  BlockBehavior behavior = simple_behavior();
  behavior.branch_divergence = 0.5;
  behavior.shared_per_iteration = 1;
  const SyntheticLaunch launch = make_simple_launch(2, behavior);
  const BlockTrace trace = launch.block_trace(0);
  for (const auto& stream : trace.warps) {
    for (const WarpInst& inst : stream) {
      EXPECT_LT(inst.bb_id, kNumBasicBlocks);
    }
  }
}

}  // namespace
}  // namespace tbp::trace
