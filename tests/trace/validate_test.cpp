#include "trace/validate.hpp"

#include <gtest/gtest.h>

#include "trace/generator.hpp"

namespace tbp::trace {
namespace {

KernelInfo tiny_kernel() {
  KernelInfo k = make_synthetic_kernel_info("v");
  k.threads_per_block = 64;  // 2 warps
  return k;
}

WarpInst alu() {
  return WarpInst{.op = Op::kIntAlu, .active_threads = 32, .bb_id = 0, .mem = {}};
}
WarpInst exit_inst() {
  return WarpInst{.op = Op::kExit, .active_threads = 32, .bb_id = 7, .mem = {}};
}
WarpInst barrier() {
  return WarpInst{.op = Op::kBarrier, .active_threads = 32, .bb_id = 1, .mem = {}};
}

BlockTrace good_trace() {
  BlockTrace trace;
  trace.warps = {{alu(), barrier(), exit_inst()}, {alu(), barrier(), exit_inst()}};
  return trace;
}

TEST(ValidateTest, AcceptsWellFormedTrace) {
  const ValidationReport report = validate_block_trace(tiny_kernel(), good_trace());
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(ValidateTest, RejectsWarpCountMismatch) {
  BlockTrace trace = good_trace();
  trace.warps.pop_back();
  EXPECT_FALSE(validate_block_trace(tiny_kernel(), trace).ok());
}

TEST(ValidateTest, RejectsEmptyStream) {
  BlockTrace trace = good_trace();
  trace.warps[1].clear();
  EXPECT_FALSE(validate_block_trace(tiny_kernel(), trace).ok());
}

TEST(ValidateTest, RejectsMissingExit) {
  BlockTrace trace = good_trace();
  trace.warps[0].pop_back();
  const ValidationReport report = validate_block_trace(tiny_kernel(), trace);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("kExit"), std::string::npos);
}

TEST(ValidateTest, RejectsInstructionAfterExit) {
  BlockTrace trace = good_trace();
  trace.warps[0].push_back(alu());
  EXPECT_FALSE(validate_block_trace(tiny_kernel(), trace).ok());
}

TEST(ValidateTest, RejectsZeroActiveThreads) {
  BlockTrace trace = good_trace();
  trace.warps[0][0].active_threads = 0;
  EXPECT_FALSE(validate_block_trace(tiny_kernel(), trace).ok());
}

TEST(ValidateTest, RejectsBadFootprint) {
  BlockTrace trace = good_trace();
  WarpInst load{.op = Op::kLoadGlobal,
                .active_threads = 32,
                .bb_id = 2,
                .mem = {.base_line = 0, .line_stride = 0, .n_lines = 1}};
  trace.warps[0].insert(trace.warps[0].begin(), load);
  trace.warps[1].insert(trace.warps[1].begin(), alu());
  EXPECT_FALSE(validate_block_trace(tiny_kernel(), trace).ok());
}

TEST(ValidateTest, RejectsBbIdOutOfRange) {
  BlockTrace trace = good_trace();
  trace.warps[0][0].bb_id = 200;
  EXPECT_FALSE(validate_block_trace(tiny_kernel(), trace).ok());
}

TEST(ValidateTest, RejectsBarrierMismatchAcrossWarps) {
  BlockTrace trace = good_trace();
  // Warp 0 executes two barriers, warp 1 only one: a guaranteed deadlock.
  trace.warps[0].insert(trace.warps[0].begin(), barrier());
  trace.warps[1].insert(trace.warps[1].begin(), alu());
  const ValidationReport report = validate_block_trace(tiny_kernel(), trace);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("barrier"), std::string::npos);
}

TEST(ValidateTest, GeneratorOutputIsAlwaysValid) {
  trace::BlockBehavior b;
  b.loop_iterations = 5;
  b.branch_divergence = 0.4;
  b.barrier_per_iteration = true;
  b.shared_per_iteration = 1;
  b.lines_per_access = 8;
  b.pattern = AddressPattern::kRandom;
  b.working_set_lines = 512;
  const SyntheticLaunch launch(make_synthetic_kernel_info("gen"), 20, 99,
                               [b](std::uint32_t) { return b; });
  const ValidationReport report = validate_launch(launch);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(ValidateTest, IssueLimitBoundsWork) {
  // A launch full of bad blocks stops at the issue cap.
  struct Bad final : LaunchTraceSource {
    KernelInfo info = make_synthetic_kernel_info("bad");
    [[nodiscard]] const KernelInfo& kernel() const override { return info; }
    [[nodiscard]] std::uint32_t n_blocks() const override { return 1000; }
    [[nodiscard]] BlockTrace block_trace(std::uint32_t) const override {
      return BlockTrace{};  // zero warps: invalid
    }
  };
  const Bad bad;
  const ValidationReport report = validate_launch(bad, 5);
  EXPECT_EQ(report.issues.size(), 5u);
}

}  // namespace
}  // namespace tbp::trace
