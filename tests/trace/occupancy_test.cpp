#include "trace/occupancy.hpp"

#include <gtest/gtest.h>

#include "trace/generator.hpp"

namespace tbp::trace {
namespace {

SmResources fermi_resources() {
  return SmResources{.max_threads = 1536,
                     .max_blocks = 8,
                     .registers = 32768,
                     .shared_mem_bytes = 49152};
}

KernelInfo kernel_with(std::uint32_t threads, std::uint32_t regs,
                       std::uint32_t smem) {
  KernelInfo k = make_synthetic_kernel_info("occ");
  k.threads_per_block = threads;
  k.registers_per_thread = regs;
  k.shared_mem_per_block = smem;
  return k;
}

TEST(OccupancyTest, ThreadLimited) {
  // 256-thread blocks, tiny registers/smem: 1536/256 = 6 blocks.
  EXPECT_EQ(sm_occupancy(kernel_with(256, 4, 256), fermi_resources()), 6u);
}

TEST(OccupancyTest, BlockSlotLimited) {
  // 64-thread blocks would allow 24 by threads; the 8-slot limit wins.
  EXPECT_EQ(sm_occupancy(kernel_with(64, 4, 256), fermi_resources()), 8u);
}

TEST(OccupancyTest, RegisterLimited) {
  // 256 threads * 40 regs = 10240 regs/block -> 32768/10240 = 3.
  EXPECT_EQ(sm_occupancy(kernel_with(256, 40, 256), fermi_resources()), 3u);
}

TEST(OccupancyTest, SharedMemoryLimited) {
  // 24 KB smem per block -> 49152/24576 = 2.
  EXPECT_EQ(sm_occupancy(kernel_with(128, 4, 24576), fermi_resources()), 2u);
}

TEST(OccupancyTest, OversizedBlockYieldsZero) {
  EXPECT_EQ(sm_occupancy(kernel_with(2048, 4, 0), fermi_resources()), 0u);
}

TEST(OccupancyTest, ZeroSharedMemDoesNotDivideByZero) {
  EXPECT_EQ(sm_occupancy(kernel_with(256, 4, 0), fermi_resources()), 6u);
}

TEST(OccupancyTest, SystemOccupancyScalesWithSms) {
  const KernelInfo k = kernel_with(256, 20, 4096);
  const SmResources r = fermi_resources();
  const std::uint32_t per_sm = sm_occupancy(k, r);
  EXPECT_EQ(system_occupancy(k, r, 14), per_sm * 14);
  EXPECT_EQ(system_occupancy(k, r, 1), per_sm);
}

TEST(OccupancyTest, PaperDefaultKernelGivesEpochSize84) {
  // The Fermi Table V config with the default 256-thread synthetic kernel:
  // 6 blocks/SM * 14 SMs = 84 — the epoch size used throughout the benches.
  const KernelInfo k = kernel_with(256, 20, 4096);
  EXPECT_EQ(system_occupancy(k, fermi_resources(), 14), 84u);
}

}  // namespace
}  // namespace tbp::trace
