// Content-addressed store suite: key-derivation stability pins, the
// sharded on-disk layout, deterministic LRU eviction under a byte budget,
// quarantine of corrupted entries, and index recovery (corrupt or missing
// journal -> rebuild from the object scan).
#include "store/store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/faults.hpp"
#include "store/key.hpp"
#include "store/migrate.hpp"

namespace tbp::store {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const fs::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

// ---- key derivation ----

TEST(StoreKeyTest, DerivationIsPinnedForever) {
  // These literals are the on-disk addressing contract: if any of them
  // moves, every deployed store (including the committed tbpoint_cache/)
  // goes cold.  Never update the expectations without bumping kStoreEpoch.
  EXPECT_EQ(make_key("row", "tbpoint-row-v3", "stream_d4_s7b90147_cdeadbeef",
                     "x")
                .id,
            "571bf6d6424920d54fbed12d4afcc955");
  EXPECT_EQ(make_key("response", "tbp-manifest-v1", "{\"a\":1}", "x").id,
            "2d0aff44f10f7ee5ddd4f6584ea6b165");
  EXPECT_EQ(make_key("test", "v1", "payload", "x").id,
            "b97a1729257d5fdfcbeac197744de25f");
  KeyHasher hasher;
  hasher.field("abc").field_u64(123);
  EXPECT_EQ(hasher.hex(), "fb32ad7e611abdad63276103fe6e9d2d");
}

TEST(StoreKeyTest, FieldsAreDelimited) {
  // Length-prefixed fields: shifting bytes across a field boundary must
  // change the hash, or distinct inputs would alias one entry.
  KeyHasher ab_c;
  ab_c.field("ab").field("c");
  KeyHasher a_bc;
  a_bc.field("a").field("bc");
  EXPECT_NE(ab_c.hex(), a_bc.hex());

  EXPECT_NE(make_key("row", "v1", "data", "x").id,
            make_key("row", "v2", "data", "x").id);
  EXPECT_NE(make_key("row", "v1", "data", "x").id,
            make_key("response", "v1", "data", "x").id);
  // The label is diagnostic only — it never participates in addressing.
  EXPECT_EQ(make_key("row", "v1", "data", "x").id,
            make_key("row", "v1", "data", "other-label").id);
}

TEST(StoreKeyTest, Validation) {
  EXPECT_TRUE(valid_key_id("571bf6d6424920d54fbed12d4afcc955"));
  EXPECT_FALSE(valid_key_id(""));
  EXPECT_FALSE(valid_key_id("571bf6d6424920d54fbed12d4afcc95"));    // 31
  EXPECT_FALSE(valid_key_id("571bf6d6424920d54fbed12d4afcc9555"));  // 33
  EXPECT_FALSE(valid_key_id("571BF6D6424920D54FBED12D4AFCC955"));   // upper
  EXPECT_FALSE(valid_key_id("571bf6d6424920d54fbed12d4afcc95g"));   // non-hex

  EXPECT_TRUE(valid_label("stream-d48_sms4.v1:x"));
  EXPECT_FALSE(valid_label(""));
  EXPECT_FALSE(valid_label("has space"));
  EXPECT_FALSE(valid_label("has/slash"));
  EXPECT_FALSE(valid_label("has\nnewline"));
}

// ---- round trip and layout ----

TEST(StoreTest, RoundTripUsesShardedLayout) {
  const std::string dir = fresh_dir("tbp_store_roundtrip");
  ContentStore store(dir, StoreOptions{});
  ASSERT_TRUE(store.open().ok());

  const StoreKey key = make_key("test", "v1", "payload", "round-trip");
  ASSERT_TRUE(store.put(key, "the payload bytes\n").ok());

  // Two-level sharding: objects/<first 2 hex>/<remaining 30 hex>.tbp.
  const fs::path path = store.entry_path(key);
  EXPECT_EQ(path.parent_path().filename().string(), key.id.substr(0, 2));
  EXPECT_EQ(path.filename().string(), key.id.substr(2) + ".tbp");
  EXPECT_EQ(path.parent_path().parent_path().filename().string(), "objects");
  EXPECT_TRUE(fs::is_regular_file(path));
  // Entries are sealed artifacts, never raw payload bytes.
  EXPECT_EQ(read_file(path).rfind("tbp-store-entry-v1", 0), 0u);

  const auto loaded = store.get(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "the payload bytes\n");
  EXPECT_TRUE(store.contains(key));
  EXPECT_EQ(store.entry_count(), 1u);
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(store.stats().puts, 1u);
}

TEST(StoreTest, OverwriteReplacesPayloadAndBytes) {
  const std::string dir = fresh_dir("tbp_store_overwrite");
  ContentStore store(dir, StoreOptions{});
  ASSERT_TRUE(store.open().ok());

  const StoreKey key = make_key("test", "v1", "payload", "overwrite");
  ASSERT_TRUE(store.put(key, "first").ok());
  const std::uint64_t first_total = store.total_bytes();
  ASSERT_TRUE(store.put(key, "the much longer second payload").ok());
  EXPECT_EQ(store.entry_count(), 1u);
  EXPECT_GT(store.total_bytes(), first_total);

  const auto loaded = store.get(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "the much longer second payload");
}

TEST(StoreTest, MissIsNotFoundAndCounted) {
  const std::string dir = fresh_dir("tbp_store_miss");
  ContentStore store(dir, StoreOptions{});
  ASSERT_TRUE(store.open().ok());
  const auto loaded = store.get(make_key("test", "v1", "absent", "absent"));
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.stats().misses, 1u);
}

TEST(StoreTest, MissingDirWithoutCreateIsNotFound) {
  const std::string dir = fresh_dir("tbp_store_nocreate");
  ContentStore store(dir, StoreOptions{.create = false});
  const Status opened = store.open();
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.code(), StatusCode::kNotFound);
  EXPECT_FALSE(fs::exists(dir));  // a read-only probe must not create it
}

TEST(StoreTest, RemoveDropsEntry) {
  const std::string dir = fresh_dir("tbp_store_remove");
  ContentStore store(dir, StoreOptions{});
  ASSERT_TRUE(store.open().ok());
  const StoreKey key = make_key("test", "v1", "removable", "removable");
  ASSERT_TRUE(store.put(key, "bytes").ok());
  ASSERT_TRUE(store.remove(key).ok());
  EXPECT_FALSE(store.contains(key));
  EXPECT_FALSE(fs::exists(store.entry_path(key)));
  EXPECT_EQ(store.total_bytes(), 0u);
  EXPECT_EQ(store.remove(key).code(), StatusCode::kNotFound);
}

// ---- persistence ----

TEST(StoreTest, IndexPersistsAcrossReopen) {
  const std::string dir = fresh_dir("tbp_store_reopen");
  const StoreKey a = make_key("test", "v1", "a", "entry-a");
  const StoreKey b = make_key("test", "v1", "b", "entry-b");
  {
    ContentStore store(dir, StoreOptions{});
    ASSERT_TRUE(store.open().ok());
    ASSERT_TRUE(store.put(a, "payload a").ok());
    ASSERT_TRUE(store.put(b, "payload b").ok());
    // A get refreshes a's LRU tick; flush journals it.
    ASSERT_TRUE(store.get(a).has_value());
    ASSERT_TRUE(store.flush_index().ok());
  }
  ContentStore store(dir, StoreOptions{});
  ASSERT_TRUE(store.open().ok());
  // Loaded from the journal, not rebuilt from a scan.
  EXPECT_EQ(store.stats().rebuilds, 0u);
  EXPECT_EQ(store.entry_count(), 2u);
  const auto loaded = store.get(b);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "payload b");

  // The flushed get-tick survived: a is more recently used than b was.
  std::uint64_t a_tick = 0, b_tick = 0;
  for (const StoreEntryInfo& info : store.entries()) {
    if (info.id == a.id) a_tick = info.last_use;
  }
  // b's tick was just refreshed by the get above; compare a against its
  // journaled put tick instead: a was put first (tick 1) then read (tick 3).
  EXPECT_EQ(a_tick, 3u);
  (void)b_tick;
}

// ---- LRU eviction ----

TEST(StoreTest, LruEvictionIsDeterministic) {
  const std::string dir = fresh_dir("tbp_store_lru");
  // Budget fits two sealed entries of this payload size.
  const std::string payload(256, 'x');
  ContentStore store(dir, StoreOptions{.max_bytes = 800});
  ASSERT_TRUE(store.open().ok());

  const StoreKey a = make_key("test", "v1", "lru-a", "lru-a");
  const StoreKey b = make_key("test", "v1", "lru-b", "lru-b");
  const StoreKey c = make_key("test", "v1", "lru-c", "lru-c");
  ASSERT_TRUE(store.put(a, payload).ok());
  ASSERT_TRUE(store.put(b, payload).ok());
  ASSERT_EQ(store.entry_count(), 2u);

  // Touch a so b becomes the least recently used ...
  ASSERT_TRUE(store.get(a).has_value());
  // ... then push the store over budget: b must be the victim.
  ASSERT_TRUE(store.put(c, payload).ok());
  EXPECT_EQ(store.stats().evictions, 1u);
  EXPECT_TRUE(store.contains(a));
  EXPECT_FALSE(store.contains(b));
  EXPECT_TRUE(store.contains(c));
  EXPECT_FALSE(fs::exists(store.entry_path(b)));
  EXPECT_LE(store.total_bytes(), 800u);
}

TEST(StoreTest, EvictionNeverDropsTheEntryJustWritten) {
  const std::string dir = fresh_dir("tbp_store_keep_new");
  ContentStore store(dir, StoreOptions{.max_bytes = 1});
  ASSERT_TRUE(store.open().ok());
  const StoreKey a = make_key("test", "v1", "keep-a", "keep-a");
  const StoreKey b = make_key("test", "v1", "keep-b", "keep-b");
  ASSERT_TRUE(store.put(a, "over budget on its own").ok());
  EXPECT_TRUE(store.contains(a));  // sole entry is never evicted
  ASSERT_TRUE(store.put(b, "also over budget").ok());
  // a went; the just-written b stayed even though the budget is blown.
  EXPECT_FALSE(store.contains(a));
  EXPECT_TRUE(store.contains(b));
  EXPECT_EQ(store.stats().evictions, 1u);
}

TEST(StoreTest, EvictionTiesBreakByKeyId) {
  const std::string dir = fresh_dir("tbp_store_ties");
  const std::string payload(256, 'y');
  const StoreKey a = make_key("test", "v1", "tie-a", "tie-a");
  const StoreKey b = make_key("test", "v1", "tie-b", "tie-b");
  {
    ContentStore store(dir, StoreOptions{});
    ASSERT_TRUE(store.open().ok());
    ASSERT_TRUE(store.put(a, payload).ok());
    ASSERT_TRUE(store.put(b, payload).ok());
  }
  // A rebuild resets every survivor to tick 0, making the LRU order a pure
  // id tie; the eviction victim must then be the smaller id.
  ContentStore store(dir, StoreOptions{.max_bytes = 800});
  ASSERT_TRUE(store.open().ok());
  ASSERT_TRUE(store.rebuild_index().ok());
  const StoreKey c = make_key("test", "v1", "tie-c", "tie-c");
  ASSERT_TRUE(store.put(c, payload).ok());
  const StoreKey& low = a.id < b.id ? a : b;
  const StoreKey& high = a.id < b.id ? b : a;
  EXPECT_FALSE(store.contains(low));
  EXPECT_TRUE(store.contains(high));
  EXPECT_TRUE(store.contains(c));
}

// ---- corruption quarantine ----

TEST(StoreTest, CorruptEntryQuarantinedOnGet) {
  const std::string dir = fresh_dir("tbp_store_quarantine");
  ContentStore store(dir, StoreOptions{});
  ASSERT_TRUE(store.open().ok());
  const StoreKey key = make_key("test", "v1", "victim", "victim");
  ASSERT_TRUE(store.put(key, "victim payload").ok());
  const std::string pristine = read_file(store.entry_path(key));

  write_file(store.entry_path(key), harness::truncate_at(pristine, 20));
  const auto first = store.get(key);
  ASSERT_FALSE(first.has_value());
  EXPECT_EQ(first.status().code(), StatusCode::kCorrupt);
  EXPECT_EQ(store.stats().quarantined, 1u);
  // Quarantine deleted the file and dropped the index row: clean miss next.
  EXPECT_FALSE(fs::exists(store.entry_path(key)));
  const auto second = store.get(key);
  ASSERT_FALSE(second.has_value());
  EXPECT_EQ(second.status().code(), StatusCode::kNotFound);
}

TEST(StoreTest, EveryCorruptionVariantIsRejected) {
  const std::string dir = fresh_dir("tbp_store_faults");
  ContentStore store(dir, StoreOptions{});
  ASSERT_TRUE(store.open().ok());
  const StoreKey key = make_key("test", "v1", "pristine", "pristine");
  const StoreKey donor_key = make_key("test", "v1", "donor", "donor");
  ASSERT_TRUE(store.put(key, "pristine payload bytes").ok());
  ASSERT_TRUE(store.put(donor_key, "donor payload bytes").ok());
  const std::string pristine = read_file(store.entry_path(key));
  const std::string donor = read_file(store.entry_path(donor_key));

  for (const harness::Corruption& corruption :
       harness::corruption_suite(pristine, donor)) {
    // The donor is a complete valid entry — but for a *different* key, so
    // unlike the plain artifact loaders the store must reject it too (the
    // id header pins the body to its path).  Only the pristine bytes load.
    if (corruption.payload == pristine) continue;
    write_file(store.entry_path(key), corruption.payload);
    const auto loaded = store.get(key);
    EXPECT_FALSE(loaded.has_value())
        << "store served corruption " << corruption.name;
    if (!loaded.has_value()) {
      EXPECT_EQ(loaded.status().code(), StatusCode::kCorrupt)
          << corruption.name;
    }
    // Re-adopt the entry for the next variant.
    ASSERT_TRUE(store.put(key, "pristine payload bytes").ok());
  }
}

TEST(StoreTest, SplicedDonorEntryDetectedByIdHeader) {
  const std::string dir = fresh_dir("tbp_store_splice");
  ContentStore store(dir, StoreOptions{});
  ASSERT_TRUE(store.open().ok());
  const StoreKey key = make_key("test", "v1", "spliced", "spliced");
  const StoreKey donor_key = make_key("test", "v1", "donor2", "donor2");
  ASSERT_TRUE(store.put(key, "original").ok());
  ASSERT_TRUE(store.put(donor_key, "donor").ok());

  // A whole valid entry copied under the wrong key: checksum passes, the
  // body's id header does not.
  write_file(store.entry_path(key), read_file(store.entry_path(donor_key)));
  const auto loaded = store.get(key);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorrupt);
  // The donor's own entry is untouched.
  const auto donor_loaded = store.get(donor_key);
  ASSERT_TRUE(donor_loaded.has_value());
  EXPECT_EQ(*donor_loaded, "donor");
}

// ---- index recovery ----

TEST(StoreTest, CorruptIndexIsRebuiltFromObjects) {
  const std::string dir = fresh_dir("tbp_store_badindex");
  const StoreKey a = make_key("test", "v1", "ri-a", "ri-a");
  const StoreKey b = make_key("test", "v1", "ri-b", "ri-b");
  {
    ContentStore store(dir, StoreOptions{});
    ASSERT_TRUE(store.open().ok());
    ASSERT_TRUE(store.put(a, "payload a").ok());
    ASSERT_TRUE(store.put(b, "payload b").ok());
  }
  write_file(fs::path(dir) / "index.tbp", "not an index at all\n");

  ContentStore store(dir, StoreOptions{});
  ASSERT_TRUE(store.open().ok());
  EXPECT_EQ(store.stats().rebuilds, 1u);
  EXPECT_EQ(store.entry_count(), 2u);
  const auto loaded = store.get(a);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "payload a");
  // Survivors restart at tick 0 in key order (the get above advanced a).
  for (const StoreEntryInfo& info : store.entries()) {
    if (info.id == b.id) {
      EXPECT_EQ(info.last_use, 0u);
    }
  }
}

TEST(StoreTest, MissingIndexWithObjectsIsRebuilt) {
  const std::string dir = fresh_dir("tbp_store_noindex");
  const StoreKey a = make_key("test", "v1", "mi-a", "mi-a");
  {
    ContentStore store(dir, StoreOptions{});
    ASSERT_TRUE(store.open().ok());
    ASSERT_TRUE(store.put(a, "payload a").ok());
  }
  fs::remove(fs::path(dir) / "index.tbp");

  ContentStore store(dir, StoreOptions{});
  ASSERT_TRUE(store.open().ok());
  EXPECT_EQ(store.stats().rebuilds, 1u);
  EXPECT_TRUE(store.contains(a));
  // A fresh empty directory, by contrast, is not a recovery.
  ContentStore fresh(fresh_dir("tbp_store_fresh"), StoreOptions{});
  ASSERT_TRUE(fresh.open().ok());
  EXPECT_EQ(fresh.stats().rebuilds, 0u);
}

TEST(StoreTest, RebuildQuarantinesTornEntriesAndDeletesTemps) {
  const std::string dir = fresh_dir("tbp_store_rebuild");
  const StoreKey good = make_key("test", "v1", "rb-good", "rb-good");
  const StoreKey torn = make_key("test", "v1", "rb-torn", "rb-torn");
  ContentStore store(dir, StoreOptions{});
  ASSERT_TRUE(store.open().ok());
  ASSERT_TRUE(store.put(good, "good payload").ok());
  ASSERT_TRUE(store.put(torn, "torn payload").ok());

  // A writer that died mid-write leaves a truncated entry (only reachable
  // across processes — in-process writes are atomic) plus a stray temp.
  const std::string torn_bytes = read_file(store.entry_path(torn));
  write_file(store.entry_path(torn),
             harness::truncate_at(torn_bytes, torn_bytes.size() / 2));
  const fs::path shard = store.entry_path(good).parent_path();
  write_file(shard / "x.tmp.123.4", "incomplete temp garbage");
  write_file(shard / "not-an-entry.tbp", "junk with the right suffix");

  ASSERT_TRUE(store.rebuild_index().ok());
  EXPECT_TRUE(store.contains(good));
  EXPECT_FALSE(store.contains(torn));
  EXPECT_FALSE(fs::exists(store.entry_path(torn)));
  EXPECT_FALSE(fs::exists(shard / "x.tmp.123.4"));
  EXPECT_FALSE(fs::exists(shard / "not-an-entry.tbp"));
  EXPECT_GE(store.stats().quarantined, 2u);  // torn entry + junk name
  const auto loaded = store.get(good);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "good payload");
}

// ---- legacy migration ----

TEST(StoreMigrateTest, ImportsValidQuarantinesBadSkipsExisting) {
  const std::string dir = fresh_dir("tbp_store_migrate");
  fs::create_directories(dir);
  write_file(fs::path(dir) / "alpha.txt", "alpha payload");
  write_file(fs::path(dir) / "beta.txt", "BAD");
  write_file(fs::path(dir) / "gamma.txt", "gamma payload");
  write_file(fs::path(dir) / "ignored.json", "wrong suffix");

  ContentStore store(dir, StoreOptions{});
  ASSERT_TRUE(store.open().ok());
  LegacyImportSpec spec;
  spec.key_for_stem = [](std::string_view stem) {
    return make_key("legacy", "v1", stem, stem);
  };
  spec.recode = [](std::string_view,
                   const std::string& text) -> Result<std::string> {
    if (text == "BAD") return Status(StatusCode::kCorrupt, "bad row");
    return text;
  };
  // Pre-seed gamma so the importer sees an existing key.
  ASSERT_TRUE(store.put(make_key("legacy", "v1", "gamma", "gamma"),
                        "already migrated")
                  .ok());

  const auto report = import_legacy_flat_files(store, dir, spec);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->imported, 1u);          // alpha
  EXPECT_EQ(report->skipped_existing, 1u);  // gamma
  EXPECT_EQ(report->quarantined, 1u);       // beta

  const auto alpha = store.get(make_key("legacy", "v1", "alpha", "alpha"));
  ASSERT_TRUE(alpha.has_value());
  EXPECT_EQ(*alpha, "alpha payload");
  // Valid originals stay (other checkouts may read them); corrupt ones go.
  EXPECT_TRUE(fs::exists(fs::path(dir) / "alpha.txt"));
  EXPECT_FALSE(fs::exists(fs::path(dir) / "beta.txt"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "ignored.json"));

  // Idempotent: a second import skips everything still on disk.
  const auto again = import_legacy_flat_files(store, dir, spec);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->imported, 0u);
  EXPECT_EQ(again->skipped_existing, 2u);  // alpha + gamma (beta is gone)
}

TEST(StoreMigrateTest, MissingLegacyDirIsEmptySuccess) {
  const std::string store_dir = fresh_dir("tbp_store_migrate_none");
  ContentStore store(store_dir, StoreOptions{});
  ASSERT_TRUE(store.open().ok());
  LegacyImportSpec spec;
  spec.key_for_stem = [](std::string_view stem) {
    return make_key("legacy", "v1", stem, stem);
  };
  spec.recode = [](std::string_view,
                   const std::string& text) -> Result<std::string> {
    return text;
  };
  const auto report = import_legacy_flat_files(
      store, fs::path(store_dir) / "does_not_exist", spec);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->imported, 0u);
  EXPECT_EQ(report->quarantined, 0u);
}

}  // namespace
}  // namespace tbp::store
