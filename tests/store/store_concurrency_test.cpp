// Store thread-safety: concurrent writers and readers over one store must
// never observe a torn payload, lose a committed entry, or corrupt the
// counters.  Runs under the `parallel` ctest label so the ThreadSanitizer
// tree exercises exactly these interleavings.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "store/key.hpp"
#include "store/store.hpp"
#include "support/parallel.hpp"

namespace tbp::store {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string payload_for(std::size_t i) {
  return "payload " + std::to_string(i) + " " +
         std::string(64 + (i % 7) * 16, static_cast<char>('a' + (i % 26)));
}

TEST(StoreConcurrencyTest, ConcurrentDistinctWritersAllCommit) {
  const std::string dir = fresh_dir("tbp_storec_writers");
  ContentStore store(dir, StoreOptions{});
  ASSERT_TRUE(store.open().ok());

  constexpr std::size_t kEntries = 64;
  std::vector<Status> results(kEntries);
  par::parallel_for(kEntries, 8, [&](std::size_t i) {
    const StoreKey key =
        make_key("test", "v1", "w" + std::to_string(i), "writer");
    results[i] = store.put(key, payload_for(i));
  });
  for (std::size_t i = 0; i < kEntries; ++i) {
    ASSERT_TRUE(results[i].ok()) << "writer " << i << ": "
                                 << results[i].message();
  }
  EXPECT_EQ(store.entry_count(), kEntries);
  EXPECT_EQ(store.stats().puts, kEntries);
  for (std::size_t i = 0; i < kEntries; ++i) {
    const auto loaded =
        store.get(make_key("test", "v1", "w" + std::to_string(i), "writer"));
    ASSERT_TRUE(loaded.has_value()) << "entry " << i;
    EXPECT_EQ(*loaded, payload_for(i)) << "entry " << i;
  }
}

TEST(StoreConcurrencyTest, RacingSameKeyWritersLeaveOneCompletePayload) {
  const std::string dir = fresh_dir("tbp_storec_samekey");
  ContentStore store(dir, StoreOptions{});
  ASSERT_TRUE(store.open().ok());

  const StoreKey key = make_key("test", "v1", "contended", "contended");
  constexpr std::size_t kWriters = 16;
  par::parallel_for(kWriters, 8, [&](std::size_t i) {
    ASSERT_TRUE(store.put(key, payload_for(i)).ok());
  });
  // Whichever writer won, the surviving payload is one of the candidates in
  // full — never an interleaving of two.
  const auto loaded = store.get(key);
  ASSERT_TRUE(loaded.has_value());
  bool matches_one = false;
  for (std::size_t i = 0; i < kWriters; ++i) {
    matches_one = matches_one || *loaded == payload_for(i);
  }
  EXPECT_TRUE(matches_one);
  EXPECT_EQ(store.entry_count(), 1u);
  EXPECT_EQ(store.stats().puts, kWriters);
}

TEST(StoreConcurrencyTest, MixedReadersAndWritersSeeCompleteEntriesOnly) {
  const std::string dir = fresh_dir("tbp_storec_mixed");
  ContentStore store(dir, StoreOptions{});
  ASSERT_TRUE(store.open().ok());

  constexpr std::size_t kKeys = 16;
  constexpr std::size_t kOps = 128;
  std::atomic<std::size_t> torn{0};
  par::parallel_for(kOps, 8, [&](std::size_t op) {
    const std::size_t k = op % kKeys;
    const StoreKey key =
        make_key("test", "v1", "m" + std::to_string(k), "mixed");
    if (op % 3 == 0) {
      ASSERT_TRUE(store.put(key, payload_for(k)).ok());
    } else {
      const auto loaded = store.get(key);
      // A reader sees either a miss (not written yet) or the one complete
      // payload this key ever holds; anything else is a torn read.
      if (loaded.has_value() && *loaded != payload_for(k)) {
        torn.fetch_add(1, std::memory_order_relaxed);
      }
      if (!loaded.has_value()) {
        ASSERT_EQ(loaded.status().code(), StatusCode::kNotFound);
      }
    }
  });
  EXPECT_EQ(torn.load(), 0u);
  const StoreStats stats = store.stats();
  // Counter bookkeeping is exact under contention.
  EXPECT_EQ(stats.puts, (kOps + 2) / 3);
  EXPECT_EQ(stats.hits + stats.misses, kOps - stats.puts);
  EXPECT_EQ(stats.quarantined, 0u);
}

TEST(StoreConcurrencyTest, BudgetHoldsUnderConcurrentPuts) {
  const std::string dir = fresh_dir("tbp_storec_budget");
  constexpr std::uint64_t kBudget = 4096;
  ContentStore store(dir, StoreOptions{.max_bytes = kBudget});
  ASSERT_TRUE(store.open().ok());

  constexpr std::size_t kEntries = 48;
  par::parallel_for(kEntries, 8, [&](std::size_t i) {
    const StoreKey key =
        make_key("test", "v1", "b" + std::to_string(i), "budget");
    ASSERT_TRUE(store.put(key, payload_for(i)).ok());
  });
  // Eviction runs under the same lock as the put, so the budget can never
  // be left blown once the storm settles.
  EXPECT_LE(store.total_bytes(), kBudget);
  EXPECT_GE(store.entry_count(), 1u);
  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.puts, kEntries);
  EXPECT_EQ(stats.puts - stats.evictions, store.entry_count());
}

}  // namespace
}  // namespace tbp::store
