#include "analytical/mwp_cwp.hpp"

#include <gtest/gtest.h>

#include "profile/profiler.hpp"
#include "sim/gpu.hpp"
#include "trace/generator.hpp"

namespace tbp::analytical {
namespace {

trace::BlockBehavior behavior(std::uint32_t alu, std::uint32_t mem,
                              std::uint8_t lines) {
  trace::BlockBehavior b;
  b.loop_iterations = 8;
  b.alu_per_iteration = alu;
  b.mem_per_iteration = mem;
  b.stores_per_iteration = 0;
  b.lines_per_access = lines;
  b.pattern = trace::AddressPattern::kStreaming;
  return b;
}

struct Scenario {
  trace::SyntheticLaunch launch;
  profile::LaunchProfile profile;
  LaunchCharacteristics ch;
};

Scenario make_scenario(std::uint32_t n_blocks, std::uint32_t alu, std::uint32_t mem,
                 std::uint8_t lines) {
  trace::SyntheticLaunch launch(trace::make_synthetic_kernel_info("an"), n_blocks,
                                3, [=](std::uint32_t) {
                                  return behavior(alu, mem, lines);
                                });
  profile::LaunchProfile p = profile::profile_launch(launch);
  LaunchCharacteristics ch = characterize(p, launch.kernel());
  return Scenario{std::move(launch), std::move(p), ch};
}

TEST(MwpCwpTest, CharacterizeExtractsAverages) {
  const Scenario s = make_scenario(10, 4, 2, 2);
  EXPECT_EQ(s.ch.n_blocks, 10u);
  EXPECT_EQ(s.ch.warps_per_block, 8u);
  // Per warp: 2 + 8*(4+2) + 2 = 52 insts; 8*2*2 = 32 requests.
  EXPECT_DOUBLE_EQ(s.ch.insts_per_warp, 52.0);
  EXPECT_DOUBLE_EQ(s.ch.mem_requests_per_warp, 32.0);
  EXPECT_LE(s.ch.mem_insts_per_warp, s.ch.mem_requests_per_warp);
}

TEST(MwpCwpTest, EmptyLaunchPredictsZero) {
  const LaunchCharacteristics ch;
  const AnalyticalPrediction p = predict(ch, sim::fermi_config());
  EXPECT_DOUBLE_EQ(p.machine_ipc, 0.0);
}

TEST(MwpCwpTest, ComputeBoundKernelIsIssueLimited) {
  const Scenario s = make_scenario(200, 12, 0, 1);
  const AnalyticalPrediction p = predict(s.ch, sim::fermi_config());
  EXPECT_EQ(p.regime, AnalyticalPrediction::Regime::kLatencyHidden);
  // Issue-limited: per-SM IPC approaches 1.
  EXPECT_GT(p.ipc_per_sm, 0.9);
}

TEST(MwpCwpTest, MemoryHeavyKernelIsNotIssueLimited) {
  const Scenario s = make_scenario(200, 1, 4, 8);
  const AnalyticalPrediction p = predict(s.ch, sim::fermi_config());
  EXPECT_NE(p.regime, AnalyticalPrediction::Regime::kLatencyHidden);
  EXPECT_LT(p.ipc_per_sm, 0.7);
}

TEST(MwpCwpTest, IpcWithinMachineBounds) {
  for (std::uint32_t mem : {0u, 1u, 3u}) {
    const Scenario s = make_scenario(100, 5, mem, 4);
    const AnalyticalPrediction p = predict(s.ch, sim::fermi_config());
    EXPECT_GT(p.machine_ipc, 0.0);
    EXPECT_LE(p.ipc_per_sm, 1.0 + 1e-9);
  }
}

TEST(MwpCwpTest, MoreCoalescingHelps) {
  const Scenario bad = make_scenario(150, 4, 2, 16);
  const Scenario good = make_scenario(150, 4, 2, 1);
  const double ipc_bad = predict(bad.ch, sim::fermi_config()).machine_ipc;
  const double ipc_good = predict(good.ch, sim::fermi_config()).machine_ipc;
  EXPECT_GT(ipc_good, ipc_bad);
}

TEST(MwpCwpTest, PredictionIsTheRightOrderOfMagnitude) {
  // The analytical model trades accuracy for speed; it must still land
  // within ~2x of the simulator (the paper's design-space-exploration use).
  const Scenario s = make_scenario(300, 5, 2, 2);
  const sim::GpuConfig config = sim::fermi_config();
  const AnalyticalPrediction p = predict(s.ch, config);

  sim::GpuSimulator simulator(config);
  const sim::LaunchResult full = simulator.run_launch(s.launch);
  const double ratio = p.machine_ipc / full.machine_ipc();
  EXPECT_GT(ratio, 0.4) << "analytical " << p.machine_ipc << " vs sim "
                        << full.machine_ipc();
  EXPECT_LT(ratio, 2.5);
}

TEST(MwpCwpTest, ApplicationCompositionWeighsByInstructions) {
  const Scenario a = make_scenario(100, 12, 0, 1);
  const Scenario b = make_scenario(100, 1, 4, 8);
  profile::ApplicationProfile app;
  app.launches = {a.profile, b.profile};
  const double combined =
      predict_application_ipc(app, a.launch.kernel(), sim::fermi_config());
  const double ipc_a = predict(a.ch, sim::fermi_config()).machine_ipc;
  const double ipc_b = predict(b.ch, sim::fermi_config()).machine_ipc;
  EXPECT_GT(combined, std::min(ipc_a, ipc_b));
  EXPECT_LT(combined, std::max(ipc_a, ipc_b));
}

}  // namespace
}  // namespace tbp::analytical
