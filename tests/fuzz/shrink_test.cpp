// Shrinker behavior: a failing spec is reduced to a strictly smaller spec
// that still fails the same oracle stage, the procedure is deterministic,
// and a passing spec is returned untouched.
#include "fuzz/shrink.hpp"

#include <gtest/gtest.h>

#include "fuzz/generate.hpp"
#include "fuzz/spec_io.hpp"
#include "obs/report.hpp"
#include "sim/config.hpp"

namespace tbp::fuzz {
namespace {

constexpr std::uint64_t kHighErrorSeed = 0x8c15cfeb7fe6f796ULL;

sim::GpuConfig small_config() { return sim::scaled_config(48, 4); }

/// An always-failing setup: zero accuracy bound against a seed with known
/// nonzero TBPoint error (the other stages are off, so shrink re-checks
/// exactly one comparison per candidate).
OracleBounds failing_bounds() {
  OracleBounds bounds;
  bounds.max_tbpoint_err_pct = 0.0;
  bounds.run_parallel = false;
  bounds.run_faults = false;
  return bounds;
}

TEST(ShrinkTest, ReducesAFailingSpecAndPreservesTheFailure) {
  const workloads::WorkloadSpec spec = generate_spec(kHighErrorSeed);
  ShrinkOptions options;
  options.max_attempts = 16;
  const ShrinkResult result =
      shrink_spec(spec, small_config(), failing_bounds(), options);

  EXPECT_TRUE(result.reduced);
  EXPECT_LT(shrink_cost(result.spec), shrink_cost(spec));
  EXPECT_LE(result.attempts, options.max_attempts);
  // The minimized spec still fails the *same* stage.
  ASSERT_FALSE(result.report.ok());
  EXPECT_EQ(result.report.violations.front().stage, OracleStage::kAccuracy);
  // And it is still a valid spec a reproducer file could carry.
  EXPECT_TRUE(workloads::validate_spec(result.spec).ok());
}

TEST(ShrinkTest, IsDeterministic) {
  const workloads::WorkloadSpec spec = generate_spec(kHighErrorSeed);
  ShrinkOptions options;
  options.max_attempts = 10;
  const ShrinkResult a =
      shrink_spec(spec, small_config(), failing_bounds(), options);
  const ShrinkResult b =
      shrink_spec(spec, small_config(), failing_bounds(), options);
  EXPECT_EQ(obs::json_serialize(spec_to_value(a.spec)),
            obs::json_serialize(spec_to_value(b.spec)));
  EXPECT_EQ(a.attempts, b.attempts);
}

TEST(ShrinkTest, PassingSpecIsReturnedUnchanged) {
  const workloads::WorkloadSpec spec = generate_spec(kHighErrorSeed);
  OracleBounds bounds = failing_bounds();
  bounds.max_tbpoint_err_pct = 100.0;  // nothing fails
  const ShrinkResult result = shrink_spec(spec, small_config(), bounds);
  EXPECT_FALSE(result.reduced);
  EXPECT_EQ(result.attempts, 1u);
  EXPECT_TRUE(result.report.ok());
  EXPECT_EQ(obs::json_serialize(spec_to_value(result.spec)),
            obs::json_serialize(spec_to_value(spec)));
}

TEST(ShrinkTest, CostIsMonotoneInEveryMoveFamily) {
  workloads::WorkloadSpec spec = generate_spec(kHighErrorSeed);
  const auto base = shrink_cost(spec);

  workloads::WorkloadSpec fewer = spec;
  fewer.launches.pop_back();
  if (!fewer.launches.empty()) {
    EXPECT_LT(shrink_cost(fewer), base);
  }

  workloads::WorkloadSpec halved = spec;
  if (halved.launches.front().n_blocks > 1) {
    halved.launches.front().n_blocks /= 2;
    EXPECT_LT(shrink_cost(halved), base);
  }

  workloads::WorkloadSpec flat = spec;
  for (workloads::LaunchSpec& l : flat.launches) {
    l.pattern = workloads::BlockPattern::kRegular;
    l.branch_divergence = 0.0;
    l.address = trace::AddressPattern::kStreaming;
    l.lines_per_access = 1;
    l.barrier_per_iteration = false;
  }
  EXPECT_LE(shrink_cost(flat), base);
}

}  // namespace
}  // namespace tbp::fuzz
