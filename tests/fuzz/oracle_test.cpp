// Differential-oracle behavior: clean specs pass every stage, each oracle
// trips on its own class of injected violation, and the fault oracle
// composes with harness/faults (checksum-detectable corruption quarantines;
// a checksum-valid semantic alteration is caught differentially).
#include "fuzz/oracle.hpp"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "fuzz/generate.hpp"
#include "profile/profile_io.hpp"
#include "sim/config.hpp"

namespace tbp::fuzz {
namespace {

// The calibration sweep's worst-accuracy seed (4.75% TBPoint error with
// default limits): guaranteed nonzero error, so a zero bound must trip.
constexpr std::uint64_t kHighErrorSeed = 0x8c15cfeb7fe6f796ULL;

sim::GpuConfig small_config() { return sim::scaled_config(48, 4); }

/// Accuracy/counts/trace only: cheap bounds for single-stage tests.
OracleBounds serial_bounds() {
  OracleBounds bounds;
  bounds.run_parallel = false;
  bounds.run_faults = false;
  return bounds;
}

TEST(OracleTest, CleanSpecPassesAllStages) {
  const workloads::WorkloadSpec spec = generate_spec(kHighErrorSeed);
  OracleBounds bounds;  // every stage on
  bounds.parallel_jobs = 2;
  const OracleReport report = check_workload(spec, small_config(), bounds);
  EXPECT_TRUE(report.ok()) << report.violations.front().detail;
  EXPECT_EQ(report.violation_tag(), "none");
  EXPECT_GT(report.row.total_warp_insts, 0u);
}

TEST(OracleTest, ZeroBoundTripsAccuracyWithAttribution) {
  const workloads::WorkloadSpec spec = generate_spec(kHighErrorSeed);
  OracleBounds bounds = serial_bounds();
  bounds.max_tbpoint_err_pct = 0.0;
  const OracleReport report = check_workload(spec, small_config(), bounds);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violation_tag(), "accuracy");
  const OracleViolation& v = report.violations.front();
  EXPECT_EQ(v.stage, OracleStage::kAccuracy);
  // attribute_errors names the dominant pipeline stage in the violation.
  EXPECT_TRUE(v.attributed_stage == "inter-launch" ||
              v.attributed_stage == "warm-up" ||
              v.attributed_stage == "reconstruction")
      << "attributed: '" << v.attributed_stage << "'";
  EXPECT_NE(v.detail.find("dominant component"), std::string::npos) << v.detail;
}

TEST(OracleTest, CountMismatchTripsCountsStage) {
  harness::ExperimentRow row;
  row.total_warp_insts = 1000;
  row.full_retired_warp_insts = 999;
  std::vector<OracleViolation> violations;
  check_counts(row, violations);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations.front().stage, OracleStage::kCounts);

  row.full_retired_warp_insts = 1000;
  violations.clear();
  check_counts(row, violations);
  EXPECT_TRUE(violations.empty());
}

TEST(OracleTest, RowDivergenceTripsParallelStage) {
  harness::ExperimentRow serial;
  serial.workload = "w";
  harness::ExperimentRow parallel = serial;
  std::vector<OracleViolation> violations;
  check_parallel(serial, parallel, violations);
  EXPECT_TRUE(violations.empty());

  parallel.tbpoint.ipc = 1.0;  // any jobs-dependent result is a violation
  check_parallel(serial, parallel, violations);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations.front().stage, OracleStage::kParallel);
  EXPECT_NE(violations.front().detail.find("diverge at byte"),
            std::string::npos);
}

TEST(OracleTest, FaultSuiteQuarantinesCleanly) {
  const workloads::Workload workload =
      workloads::build_workload(generate_spec(kHighErrorSeed));
  std::vector<OracleViolation> violations;
  check_fault_quarantine(workload, OracleBounds{}, violations);
  EXPECT_TRUE(violations.empty())
      << violations.front().detail << " (+" << violations.size() - 1
      << " more)";
}

TEST(OracleTest, TamperedProfileIsCaughtDifferentially) {
  const workloads::Workload workload =
      workloads::build_workload(generate_spec(kHighErrorSeed));
  OracleBounds bounds;
  // A "corruption" no checksum can catch: parse the artifact, nudge one
  // counter, re-serialize — a fully valid file with altered semantics.
  bounds.fault_tamper = [](const std::string& payload) {
    std::istringstream in(payload);
    Result<profile::ApplicationProfile> profile = profile::load_profile(in);
    EXPECT_TRUE(profile.ok());
    profile->launches.front().blocks.front().warp_insts += 1;
    std::ostringstream out;
    profile::save_profile(*profile, out);
    return std::move(out).str();
  };
  std::vector<OracleViolation> violations;
  check_fault_quarantine(workload, bounds, violations);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations.front().stage, OracleStage::kFaults);
  EXPECT_NE(violations.front().detail.find("tamper"), std::string::npos);
}

TEST(OracleTest, InvalidSpecIsReportedNotBuilt) {
  workloads::WorkloadSpec spec = generate_spec(kHighErrorSeed);
  spec.launches.front().threads_per_block = 7;
  const OracleReport report =
      check_workload(spec, small_config(), serial_bounds());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations.front().stage, OracleStage::kTrace);
  EXPECT_NE(report.violations.front().detail.find("invalid spec"),
            std::string::npos);
}

TEST(OracleTest, ViolationTagJoinsStagesInOrder) {
  OracleReport report;
  report.violations.push_back({OracleStage::kFaults, "f", {}});
  report.violations.push_back({OracleStage::kAccuracy, "a", {}});
  report.violations.push_back({OracleStage::kFaults, "f2", {}});
  EXPECT_EQ(report.violation_tag(), "accuracy+faults");
}

}  // namespace
}  // namespace tbp::fuzz
