// Campaign-level acceptance: the bounded PR-gate campaign passes, campaign
// results are byte-identical across --jobs values, replaying a seed is
// deterministic, and the pinned regression corpus stays green under every
// oracle.
#include "fuzz/campaign.hpp"

#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/cli.hpp"
#include "sim/config.hpp"

namespace tbp::fuzz {
namespace {

sim::GpuConfig small_config() { return sim::scaled_config(48, 4); }

CampaignOptions gate_options() {
  CampaignOptions options;
  options.bounds.parallel_jobs = 2;
  return options;
}

std::string campaign_bytes(const CampaignOptions& options,
                           const CampaignResult& result) {
  return obs::json_serialize(campaign_to_value(options, result));
}

// The PR-gate budget: 25 fresh seeds through every oracle (trace validity,
// accuracy-with-attribution, count equality, serial-vs-parallel byte
// identity, fault quarantine).  A failure here is a real pipeline
// regression; `tbp-fuzz replay <seed>` reproduces it standalone.
TEST(CampaignTest, BoundedGateCampaignPasses) {
  const CampaignOptions options = gate_options();
  ASSERT_GE(options.n_seeds, 25u);
  const CampaignResult result = run_campaign(small_config(), options);
  ASSERT_EQ(result.outcomes.size(), options.n_seeds);
  for (const SeedOutcome& outcome : result.outcomes) {
    EXPECT_TRUE(outcome.ok)
        << "seed " << outcome.seed << " [" << outcome.violation_tag
        << "]: " << outcome.violations.front().detail;
  }
  EXPECT_TRUE(result.ok());
}

TEST(CampaignTest, ResultIsByteIdenticalAcrossJobs) {
  CampaignOptions options = gate_options();
  options.n_seeds = 4;
  options.jobs = 1;
  const std::string serial =
      campaign_bytes(options, run_campaign(small_config(), options));
  options.jobs = 3;
  const std::string parallel =
      campaign_bytes(options, run_campaign(small_config(), options));
  // jobs is not part of campaign_to_value, so the bytes must match exactly.
  EXPECT_EQ(serial, parallel);
}

TEST(CampaignTest, CheckSeedIsDeterministic) {
  const CampaignOptions options = gate_options();
  const std::uint64_t seed = 0x424a9825bfca8559ULL;
  const SeedOutcome a = check_seed(seed, small_config(), options);
  const SeedOutcome b = check_seed(seed, small_config(), options);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.violation_tag, b.violation_tag);
  EXPECT_EQ(a.tbpoint_err_pct, b.tbpoint_err_pct);
}

TEST(CampaignTest, PinnedCorpusStaysGreen) {
  const std::string path =
      std::string(TBP_FUZZ_CORPUS_DIR) + "/pinned_seeds.txt";
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "cannot open " << path;

  std::vector<std::uint64_t> seeds;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    const std::size_t end = line.find_last_not_of(" \t\r");
    const Result<std::uint64_t> seed =
        harness::parse_u64(line.substr(start, end - start + 1), /*base=*/0);
    ASSERT_TRUE(seed.ok()) << "bad corpus line: " << line;
    seeds.push_back(*seed);
  }
  ASSERT_GE(seeds.size(), 4u) << "corpus unexpectedly small";

  const CampaignOptions options = gate_options();
  for (const std::uint64_t seed : seeds) {
    const SeedOutcome outcome = check_seed(seed, small_config(), options);
    EXPECT_TRUE(outcome.ok)
        << "pinned seed " << seed << " [" << outcome.violation_tag
        << "]: " << outcome.violations.front().detail;
  }
}

TEST(CampaignTest, FailingSeedIsReportedMinimizedAndSerialized) {
  CampaignOptions options = gate_options();
  options.bounds.max_tbpoint_err_pct = 0.0;  // injected violation
  options.bounds.run_parallel = false;
  options.bounds.run_faults = false;
  options.shrink.max_attempts = 10;

  // The calibration sweep's worst seed: 4.75% error, so the zero bound
  // must trip and leave something for the shrinker to preserve.
  const SeedOutcome outcome =
      check_seed(0x8c15cfeb7fe6f796ULL, small_config(), options);
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.violation_tag, "accuracy");
  EXPECT_TRUE(outcome.shrunk);
  EXPECT_TRUE(workloads::validate_spec(outcome.repro_spec).ok());

  CampaignResult result;
  result.outcomes.push_back(outcome);
  ASSERT_EQ(result.n_failures(), 1u);

  // The summary carries the failure with its spec and attribution.
  const obs::JsonValue summary = campaign_to_value(options, result);
  const obs::JsonValue* failures = summary.find("failures");
  ASSERT_NE(failures, nullptr);
  ASSERT_EQ(failures->items().size(), 1u);
  const obs::JsonValue* details = failures->items().front().find("details");
  ASSERT_NE(details, nullptr);
  ASSERT_FALSE(details->items().empty());
  const obs::JsonValue* attributed =
      details->items().front().find("attributed_stage");
  ASSERT_NE(attributed, nullptr);
  EXPECT_FALSE(attributed->as_string().empty());
}

}  // namespace
}  // namespace tbp::fuzz
