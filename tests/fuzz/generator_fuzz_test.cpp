// Generator and spec-serialization invariants: every seed maps to a valid
// spec, the mapping is deterministic, the sampled space actually covers the
// structure dimensions (shapes, patterns), and reproducer files round-trip.
#include "fuzz/generate.hpp"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "fuzz/spec_io.hpp"
#include "obs/report.hpp"
#include "stats/rng.hpp"

namespace tbp::fuzz {
namespace {

/// Canonical bytes of a spec (object keys sorted, shortest doubles), so
/// structural equality is byte equality.
std::string spec_bytes(const workloads::WorkloadSpec& spec) {
  return obs::json_serialize(spec_to_value(spec));
}

std::uint64_t nth_seed(std::uint64_t base, std::uint64_t n) {
  std::uint64_t state = base + n;
  return stats::splitmix64(state);
}

TEST(GenerateTest, EverySeedProducesAValidSpec) {
  for (std::uint64_t i = 0; i < 200; ++i) {
    const workloads::WorkloadSpec spec = generate_spec(nth_seed(0x7b90147, i));
    EXPECT_TRUE(workloads::validate_spec(spec).ok())
        << "seed " << spec.seed << ": "
        << workloads::validate_spec(spec).to_string();
    EXPECT_GE(spec.launches.size(), 1u);
    EXPECT_LE(spec.launches.size(), GeneratorLimits{}.max_launches);
  }
}

TEST(GenerateTest, SameSeedIsByteIdentical) {
  for (std::uint64_t i = 0; i < 16; ++i) {
    const std::uint64_t seed = nth_seed(42, i);
    EXPECT_EQ(spec_bytes(generate_spec(seed)), spec_bytes(generate_spec(seed)));
  }
}

TEST(GenerateTest, DistinctSeedsDiffer) {
  std::set<std::string> distinct;
  for (std::uint64_t i = 0; i < 32; ++i) {
    distinct.insert(spec_bytes(generate_spec(nth_seed(0x7b90147, i))));
  }
  // Collisions would mean the sampler ignores most of its seed.
  EXPECT_GE(distinct.size(), 31u);
}

TEST(GenerateTest, CoversEveryEvolutionShapeAndPattern) {
  std::set<EvolutionShape> shapes;
  std::set<workloads::BlockPattern> patterns;
  for (std::uint64_t i = 0; i < 100; ++i) {
    const std::uint64_t seed = nth_seed(0x7b90147, i);
    shapes.insert(evolution_for_seed(seed));
    for (const workloads::LaunchSpec& l : generate_spec(seed).launches) {
      patterns.insert(l.pattern);
    }
  }
  EXPECT_EQ(shapes.size(), 4u) << "an evolution shape is never sampled";
  EXPECT_EQ(patterns.size(), 3u) << "a block pattern is never sampled";
}

TEST(GenerateTest, RespectsTightLimits) {
  GeneratorLimits limits;
  limits.min_launches = 2;
  limits.max_launches = 3;
  limits.min_blocks_per_launch = 4;
  limits.max_blocks_per_launch = 8;
  limits.max_base_iterations = 2;
  for (std::uint64_t i = 0; i < 50; ++i) {
    const workloads::WorkloadSpec spec =
        generate_spec(nth_seed(7, i), limits);
    EXPECT_GE(spec.launches.size(), 2u);
    EXPECT_LE(spec.launches.size(), 3u);
    for (const workloads::LaunchSpec& l : spec.launches) {
      EXPECT_GE(l.n_blocks, 4u);
      EXPECT_LE(l.n_blocks, 8u);
      EXPECT_LE(l.base_iterations, 2u);
    }
  }
}

TEST(GenerateTest, SeedNameIsStable) {
  EXPECT_EQ(seed_workload_name(0), "fuzz-0000000000000000");
  EXPECT_EQ(seed_workload_name(0xdeadbeef12345678ULL),
            "fuzz-deadbeef12345678");
}

TEST(SpecIoTest, RoundTripsThroughJson) {
  const workloads::WorkloadSpec spec = generate_spec(nth_seed(0x7b90147, 3));
  const Result<workloads::WorkloadSpec> decoded =
      spec_from_value(spec_to_value(spec));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(spec_bytes(spec), spec_bytes(*decoded));
}

TEST(SpecIoTest, RejectsStructurallyBrokenValues) {
  EXPECT_EQ(spec_from_value(obs::JsonValue("not an object")).status().code(),
            StatusCode::kCorrupt);

  obs::JsonValue missing = obs::JsonValue::object();
  missing.set("name", "x");
  EXPECT_FALSE(spec_from_value(missing).ok());

  // A decoded spec that violates the documented ranges is rejected even
  // when structurally well-formed (hand-edited reproducer files).
  workloads::WorkloadSpec bad = generate_spec(nth_seed(0x7b90147, 4));
  bad.launches[0].threads_per_block = 33;  // not a warp multiple
  EXPECT_EQ(spec_from_value(spec_to_value(bad)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SpecIoTest, ReproducerFileRoundTrips) {
  const workloads::WorkloadSpec spec = generate_spec(nth_seed(0x7b90147, 5));
  const std::string path =
      testing::TempDir() + "/tbp_fuzz_repro_roundtrip.json";
  ASSERT_TRUE(save_reproducer(spec, spec.seed, "accuracy", path).ok());

  const Result<Reproducer> loaded = load_reproducer(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->seed, spec.seed);
  EXPECT_EQ(loaded->violation, "accuracy");
  EXPECT_EQ(spec_bytes(loaded->spec), spec_bytes(spec));
}

TEST(SpecIoTest, ReproducerLoaderQuarantinesCorruptFiles) {
  EXPECT_FALSE(load_reproducer(testing::TempDir() + "/does_not_exist.json").ok());

  const std::string path = testing::TempDir() + "/tbp_fuzz_repro_corrupt.json";
  const workloads::WorkloadSpec spec = generate_spec(nth_seed(0x7b90147, 6));
  ASSERT_TRUE(save_reproducer(spec, spec.seed, "counts", path).ok());
  // Flip one byte inside the sealed body: the CRC must catch it.
  std::string text;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[1 << 14];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
  }
  const std::size_t pos = text.find("\"seed\"");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 1] ^= 1;
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(text.data(), 1, text.size(), f), text.size());
    std::fclose(f);
  }
  EXPECT_EQ(load_reproducer(path).status().code(), StatusCode::kCorrupt);
}

}  // namespace
}  // namespace tbp::fuzz
