#include "markov/warp_chain.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

namespace tbp::markov {
namespace {

WarpChainParams uniform_params(double p, double m, std::size_t n) {
  return WarpChainParams{.stall_probability = p,
                         .stall_cycles = std::vector<double>(n, m)};
}

TEST(WarpChainTest, TransitionMatrixIsRowStochastic) {
  const stats::Matrix t = build_transition_matrix(uniform_params(0.1, 100.0, 4));
  EXPECT_EQ(t.rows(), 16u);
  EXPECT_EQ(t.cols(), 16u);
  EXPECT_LT(t.max_row_sum_error(), 1e-12);
}

TEST(WarpChainTest, TransitionProbabilitiesMatchHandComputation) {
  // One warp: 2x2 chain.  State 0 = stalled, state 1 = runnable.
  const stats::Matrix t = build_transition_matrix(uniform_params(0.2, 10.0, 1));
  EXPECT_NEAR(t.at(1, 0), 0.2, 1e-15);        // runnable -> stall: p
  EXPECT_NEAR(t.at(1, 1), 0.8, 1e-15);        // stays runnable: 1-p
  EXPECT_NEAR(t.at(0, 1), 0.1, 1e-15);        // wake: 1/M
  EXPECT_NEAR(t.at(0, 0), 0.9, 1e-15);        // stays stalled: 1-1/M
}

TEST(WarpChainTest, PaperExampleTransition) {
  // S_{6,2}: 0110 -> 0010 with the paper's MSB-first warp indexing.  In our
  // LSB-first encoding the same physical transition is 0110 -> 0100:
  // exactly one runnable warp stalls, the others keep their states.
  const double p = 0.1;
  const double m = 50.0;
  const stats::Matrix t = build_transition_matrix(uniform_params(p, m, 4));
  // 6 = 0110: warps 1, 2 runnable; warps 0, 3 stalled.
  // 4 = 0100: warp 1 stalls (p), warp 2 stays runnable (1-p),
  //           warps 0 and 3 stay stalled (1 - 1/M each).
  const double expected = (1.0 - 1.0 / m) * p * (1.0 - p) * (1.0 - 1.0 / m);
  EXPECT_NEAR(t.at(6, 4), expected, 1e-15);
}

TEST(WarpChainTest, SteadyStateSumsToOne) {
  const SteadyState ss = solve_warp_chain(uniform_params(0.1, 100.0, 4));
  double sum = 0.0;
  for (double v : ss.distribution) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

// Property: the 2^N-state matrix solution must match the closed-form
// product of independent per-warp stationary distributions.
class ClosedFormAgreement
    : public ::testing::TestWithParam<std::tuple<double, double, std::size_t>> {};

TEST_P(ClosedFormAgreement, MatrixMatchesClosedForm) {
  const auto [p, m, n] = GetParam();
  const WarpChainParams params = uniform_params(p, m, n);
  const SteadyState ss = solve_warp_chain(params);
  EXPECT_NEAR(ss.ipc, closed_form_ipc(params), 1e-7)
      << "p=" << p << " M=" << m << " N=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ClosedFormAgreement,
    ::testing::Combine(::testing::Values(0.05, 0.1, 0.2, 0.5),
                       ::testing::Values(10.0, 100.0, 400.0),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4}, std::size_t{6})));

TEST(WarpChainTest, HeterogeneousLatenciesMatchClosedForm) {
  WarpChainParams params;
  params.stall_probability = 0.15;
  params.stall_cycles = {80.0, 120.0, 400.0, 33.0};
  const SteadyState ss = solve_warp_chain(params);
  EXPECT_NEAR(ss.ipc, closed_form_ipc(params), 1e-7);
}

TEST(WarpChainTest, MoreWarpsRaiseIpc) {
  double prev = 0.0;
  for (std::size_t n = 1; n <= 6; ++n) {
    const double ipc = closed_form_ipc(uniform_params(0.1, 200.0, n));
    EXPECT_GT(ipc, prev);
    prev = ipc;
  }
}

TEST(WarpChainTest, HigherStallProbabilityLowersIpc) {
  double prev = 2.0;
  for (double p : {0.05, 0.1, 0.2, 0.4}) {
    const double ipc = closed_form_ipc(uniform_params(p, 200.0, 4));
    EXPECT_LT(ipc, prev);
    prev = ipc;
  }
}

TEST(WarpChainTest, IpcWithinUnitInterval) {
  for (double p : {0.01, 0.5, 0.99}) {
    for (double m : {2.0, 1000.0}) {
      const double ipc = closed_form_ipc(uniform_params(p, m, 4));
      EXPECT_GT(ipc, 0.0);
      EXPECT_LE(ipc, 1.0);
    }
  }
}

TEST(WarpChainTest, SingleWarpIpcFormula) {
  // N=1: IPC = 1 - pM/(pM+1) = 1/(pM+1).
  const double p = 0.1;
  const double m = 100.0;
  EXPECT_NEAR(closed_form_ipc(uniform_params(p, m, 1)), 1.0 / (p * m + 1.0), 1e-12);
}

}  // namespace
}  // namespace tbp::markov
