#include "markov/constant_latency.hpp"

#include <gtest/gtest.h>

namespace tbp::markov {
namespace {

TEST(ConstantLatencyTest, MatchesClosedFormChain) {
  // With M constant, the model is exactly the uniform-M chain.
  WarpChainParams params;
  params.stall_probability = 0.1;
  params.stall_cycles.assign(4, 200.0);
  EXPECT_DOUBLE_EQ(constant_latency_ipc(0.1, 200.0, 4), closed_form_ipc(params));
}

TEST(ConstantLatencyTest, EqualsStochasticMeanWhenVarianceVanishes) {
  MonteCarloConfig config;
  config.stall_probability = 0.1;
  config.mean_stall_cycles = 300.0;
  config.n_warps = 4;
  config.n_samples = 500;
  config.latency_tolerance = 1e-9;  // M distribution collapses to a point
  const ModelComparison cmp = compare_models(config);
  EXPECT_NEAR(cmp.stochastic_mean_ipc, cmp.constant_m_ipc,
              1e-4 * cmp.constant_m_ipc);
  EXPECT_LT(cmp.unmodeled_variation(), 1e-4);
}

TEST(ConstantLatencyTest, StochasticModelExposesVariationBand) {
  // The paper's point: with realistic M variance the IPC spreads, and the
  // constant-M model cannot express that spread at all.
  MonteCarloConfig config;
  config.stall_probability = 0.1;
  config.mean_stall_cycles = 400.0;
  config.n_warps = 4;
  config.n_samples = 2000;
  config.latency_tolerance = 0.1;
  const ModelComparison cmp = compare_models(config);
  EXPECT_GT(cmp.unmodeled_variation(), 0.02);
  EXPECT_LT(cmp.stochastic_p5_ipc, cmp.constant_m_ipc);
  EXPECT_GT(cmp.stochastic_p95_ipc, cmp.stochastic_p5_ipc);
  // The mean still tracks the deterministic prediction closely.
  EXPECT_NEAR(cmp.stochastic_mean_ipc, cmp.constant_m_ipc,
              0.05 * cmp.constant_m_ipc);
}

TEST(ConstantLatencyTest, MoreWarpsRaiseIpc) {
  EXPECT_GT(constant_latency_ipc(0.1, 200.0, 8),
            constant_latency_ipc(0.1, 200.0, 2));
}

}  // namespace
}  // namespace tbp::markov
