#include "markov/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace tbp::markov {
namespace {

MonteCarloConfig small_config() {
  MonteCarloConfig config;
  config.n_samples = 2000;  // plenty for the 95% property, fast for tests
  return config;
}

TEST(MonteCarloTest, DeterministicForSameSeed) {
  const MonteCarloResult a = run_ipc_variation(small_config());
  const MonteCarloResult b = run_ipc_variation(small_config());
  EXPECT_EQ(a.sample_ipcs, b.sample_ipcs);
}

TEST(MonteCarloTest, DifferentSeedsDiffer) {
  MonteCarloConfig config = small_config();
  const MonteCarloResult a = run_ipc_variation(config);
  config.seed ^= 1;
  const MonteCarloResult b = run_ipc_variation(config);
  EXPECT_NE(a.sample_ipcs, b.sample_ipcs);
}

TEST(MonteCarloTest, SampleCountHonored) {
  MonteCarloConfig config = small_config();
  config.n_samples = 123;
  EXPECT_EQ(run_ipc_variation(config).sample_ipcs.size(), 123u);
}

TEST(MonteCarloTest, PercentilesBracketOne) {
  const MonteCarloResult result = run_ipc_variation(small_config());
  ASSERT_EQ(result.normalized_ipc_percentiles.size(), 101u);
  // Normalized by the mean, the CDF must straddle 1.0 and be nondecreasing.
  EXPECT_LT(result.normalized_ipc_percentiles.front(), 1.0);
  EXPECT_GT(result.normalized_ipc_percentiles.back(), 1.0);
  for (std::size_t i = 1; i < 101; ++i) {
    EXPECT_GE(result.normalized_ipc_percentiles[i],
              result.normalized_ipc_percentiles[i - 1]);
  }
}

// The paper's Fig. 5 configurations: Lemma 4.1 must hold for each.
class Lemma41 : public ::testing::TestWithParam<
                    std::tuple<double, double, std::size_t>> {};

TEST_P(Lemma41, HoldsForConfiguration) {
  const auto [p, m, n] = GetParam();
  MonteCarloConfig config = small_config();
  config.stall_probability = p;
  config.mean_stall_cycles = m;
  config.n_warps = n;
  const MonteCarloResult result = run_ipc_variation(config);
  EXPECT_TRUE(satisfies_lemma_4_1(result))
      << "p=" << p << " M=" << m << " N=" << n
      << " within10=" << result.fraction_within_10pct;
}

INSTANTIATE_TEST_SUITE_P(
    Fig5Configs, Lemma41,
    ::testing::Combine(::testing::Values(0.05, 0.1, 0.2),
                       ::testing::Values(100.0, 400.0),
                       ::testing::Values(std::size_t{4}, std::size_t{8})));

TEST(MonteCarloTest, ExactAndClosedFormSolverAgree) {
  // Forcing the closed-form path must give (statistically) identical
  // results to the matrix path because the chains are product chains.
  MonteCarloConfig exact = small_config();
  exact.n_warps = 4;
  exact.n_samples = 200;
  exact.exact_solver_max_warps = 10;  // matrix path
  MonteCarloConfig closed = exact;
  closed.exact_solver_max_warps = 0;  // closed-form path
  const MonteCarloResult a = run_ipc_variation(exact);
  const MonteCarloResult b = run_ipc_variation(closed);
  ASSERT_EQ(a.sample_ipcs.size(), b.sample_ipcs.size());
  for (std::size_t i = 0; i < a.sample_ipcs.size(); ++i) {
    EXPECT_NEAR(a.sample_ipcs[i], b.sample_ipcs[i], 1e-6);
  }
}

TEST(MonteCarloTest, TighterLatencyToleranceShrinksSpread) {
  MonteCarloConfig wide = small_config();
  wide.latency_tolerance = 0.2;
  MonteCarloConfig narrow = small_config();
  narrow.latency_tolerance = 0.02;
  const MonteCarloResult w = run_ipc_variation(wide);
  const MonteCarloResult n = run_ipc_variation(narrow);
  EXPECT_LT(n.max_ipc - n.min_ipc, w.max_ipc - w.min_ipc);
}

}  // namespace
}  // namespace tbp::markov
