#include "workloads/workload.hpp"

#include <gtest/gtest.h>

#include <set>

#include "profile/profiler.hpp"

namespace tbp::workloads {
namespace {

WorkloadScale tiny_scale() {
  // Large divisor keeps these structural tests fast; small benchmarks are
  // protected by their own minimums.
  return WorkloadScale{.divisor = 16, .seed = 0x7b90147};
}

TEST(WorkloadTest, RegistryHasTwelveBenchmarks) {
  EXPECT_EQ(workload_names().size(), 12u);
  const std::set<std::string> names(workload_names().begin(),
                                    workload_names().end());
  for (const char* expected :
       {"bfs", "sssp", "mst", "mri", "spmv", "lbm", "cfd", "kmeans", "hotspot",
        "stream", "black", "conv"}) {
    EXPECT_TRUE(names.contains(expected)) << expected;
  }
}

class EveryWorkload : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryWorkload, BuildsWithConsistentStructure) {
  const Workload w = make_workload(GetParam(), tiny_scale());
  EXPECT_EQ(w.name, GetParam());
  EXPECT_FALSE(w.launches.empty());
  EXPECT_GT(w.total_blocks(), 0u);
  for (const auto& launch : w.launches) {
    EXPECT_GT(launch->n_blocks(), 0u);
    EXPECT_EQ(launch->kernel().n_basic_blocks, trace::kNumBasicBlocks);
  }
  EXPECT_EQ(w.sources().size(), w.launches.size());
}

TEST_P(EveryWorkload, DeterministicForSameSeed) {
  const Workload a = make_workload(GetParam(), tiny_scale());
  const Workload b = make_workload(GetParam(), tiny_scale());
  ASSERT_EQ(a.launches.size(), b.launches.size());
  for (std::size_t l = 0; l < a.launches.size(); ++l) {
    ASSERT_EQ(a.launches[l]->n_blocks(), b.launches[l]->n_blocks());
    const profile::LaunchProfile pa = profile::profile_launch(*a.launches[l]);
    const profile::LaunchProfile pb = profile::profile_launch(*b.launches[l]);
    EXPECT_EQ(pa.total_warp_insts(), pb.total_warp_insts());
    EXPECT_EQ(pa.total_mem_requests(), pb.total_mem_requests());
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, EveryWorkload,
                         ::testing::ValuesIn(workload_names()));

TEST(WorkloadTest, TableVITypeAssignments) {
  const std::set<std::string> irregular = {"bfs", "sssp", "mst", "mri", "spmv"};
  for (const std::string& name : workload_names()) {
    const Workload w = make_workload(name, tiny_scale());
    EXPECT_EQ(w.irregular(), irregular.contains(name)) << name;
  }
}

TEST(WorkloadTest, TableVILaunchCounts) {
  // Counts the paper states or the prose implies.
  EXPECT_EQ(make_workload("sssp", tiny_scale()).launches.size(), 49u);
  EXPECT_EQ(make_workload("spmv", tiny_scale()).launches.size(), 50u);
  EXPECT_EQ(make_workload("cfd", tiny_scale()).launches.size(), 100u);
  EXPECT_EQ(make_workload("kmeans", tiny_scale()).launches.size(), 30u);
  EXPECT_EQ(make_workload("hotspot", tiny_scale()).launches.size(), 1u);
  EXPECT_GE(make_workload("stream", tiny_scale()).launches.size(), 200u);
}

TEST(WorkloadTest, SmallBenchmarksAreNeverScaled) {
  const WorkloadScale huge{.divisor = 64, .seed = 1};
  EXPECT_EQ(make_workload("hotspot", huge).total_blocks(), 1849u);
  EXPECT_EQ(make_workload("mst", huge).total_blocks(),
            make_workload("mst", WorkloadScale{.divisor = 1, .seed = 1})
                .total_blocks());
}

TEST(WorkloadTest, ScaleDivisorShrinksLargeBenchmarks) {
  const std::uint64_t big =
      make_workload("conv", WorkloadScale{.divisor = 4, .seed = 1}).total_blocks();
  const std::uint64_t small =
      make_workload("conv", WorkloadScale{.divisor = 16, .seed = 1}).total_blocks();
  EXPECT_GT(big, small * 3);
}

TEST(WorkloadTest, SpmvLaunchesAreIdentical) {
  const Workload w = make_workload("spmv", tiny_scale());
  const profile::LaunchProfile first = profile::profile_launch(*w.launches[0]);
  for (std::size_t l = 1; l < w.launches.size(); ++l) {
    const profile::LaunchProfile p = profile::profile_launch(*w.launches[l]);
    EXPECT_EQ(p.total_warp_insts(), first.total_warp_insts());
    EXPECT_EQ(p.total_mem_requests(), first.total_mem_requests());
    EXPECT_EQ(p.total_thread_insts(), first.total_thread_insts());
  }
}

TEST(WorkloadTest, BfsLaunchSizesFollowFrontierCurve) {
  const Workload w = make_workload("bfs", tiny_scale());
  // Middle launches are larger than the first and last.
  const std::uint32_t first = w.launches.front()->n_blocks();
  const std::uint32_t last = w.launches.back()->n_blocks();
  std::uint32_t peak = 0;
  for (const auto& l : w.launches) peak = std::max(peak, l->n_blocks());
  EXPECT_GT(peak, first * 5);
  EXPECT_GT(peak, last * 5);
}

TEST(WorkloadTest, MstHasInstructionOutlierBlocks) {
  const Workload w = make_workload("mst", tiny_scale());
  const profile::LaunchProfile p = profile::profile_launch(*w.launches[0]);
  std::uint64_t min_insts = ~0ull;
  std::uint64_t max_insts = 0;
  for (const auto& b : p.blocks) {
    min_insts = std::min(min_insts, b.warp_insts);
    max_insts = std::max(max_insts, b.warp_insts);
  }
  EXPECT_GT(max_insts, min_insts * 5) << "mst needs giant outlier blocks";
}

TEST(WorkloadTest, HotspotHasPeriodicBorderPattern) {
  const Workload w = make_workload("hotspot", tiny_scale());
  const profile::LaunchProfile p = profile::profile_launch(*w.launches[0]);
  // Block 0 (border) does less work than block 44 (interior of row 1).
  EXPECT_LT(p.blocks[0].warp_insts, p.blocks[44].warp_insts);
  // The pattern repeats with the grid width (43).
  EXPECT_EQ(p.blocks[0].warp_insts, p.blocks[42].warp_insts);
  EXPECT_EQ(p.blocks[44].warp_insts, p.blocks[44 + 43].warp_insts);
}

TEST(WorkloadTest, RegularKernelsHaveLowBlockSizeCov) {
  for (const char* name : {"lbm", "cfd", "kmeans", "black", "conv"}) {
    const Workload w = make_workload(name, tiny_scale());
    const profile::LaunchProfile p = profile::profile_launch(*w.launches[0]);
    EXPECT_LT(p.block_size_cov(), 0.1) << name;
  }
}

TEST(WorkloadTest, IrregularKernelsHaveHigherBlockSizeCovThanRegular) {
  const Workload irregular = make_workload("mst", tiny_scale());
  const Workload regular = make_workload("cfd", tiny_scale());
  EXPECT_GT(
      profile::profile_launch(*irregular.launches[0]).block_size_cov(),
      profile::profile_launch(*regular.launches[0]).block_size_cov());
}

TEST(WorkloadTest, MakeAllBuildsTwelve) {
  const std::vector<Workload> all = make_all_workloads(tiny_scale());
  EXPECT_EQ(all.size(), 12u);
}

TEST(WorkloadTest, BinomialIsOptInSingleLaunch) {
  // The Fig. 11 companion benchmark: registered by name but not part of
  // the default Table VI twelve.
  const auto& names = workload_names();
  EXPECT_EQ(std::count(names.begin(), names.end(), "binomial"), 0);
  const Workload w = make_workload("binomial", tiny_scale());
  EXPECT_EQ(w.launches.size(), 1u);  // like hotspot: intra-only savings
  EXPECT_EQ(w.type, KernelType::kRegular);
  const profile::LaunchProfile p = profile::profile_launch(*w.launches[0]);
  EXPECT_LT(p.block_size_cov(), 0.05);
}

TEST(WorkloadTest, SolverWorkloadLaunchesAreNearIdentical) {
  // Regular solver-style workloads reuse one behaviour table; launches
  // differ only through trace-level randomness (per-launch divergence
  // rolls), so their aggregate statistics agree within a fraction of a
  // percent and inter-launch clustering collapses them.
  for (const char* name : {"cfd", "kmeans", "lbm", "black", "conv", "stream"}) {
    const Workload w = make_workload(name, tiny_scale());
    const profile::LaunchProfile first = profile::profile_launch(*w.launches[0]);
    const profile::LaunchProfile last =
        profile::profile_launch(*w.launches.back());
    const auto a = static_cast<double>(first.total_warp_insts());
    const auto b = static_cast<double>(last.total_warp_insts());
    EXPECT_NEAR(a, b, 0.02 * a) << name;
  }
}

}  // namespace
}  // namespace tbp::workloads
