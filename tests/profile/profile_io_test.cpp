#include "profile/profile_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace tbp::profile {
namespace {

ApplicationProfile sample_profile() {
  ApplicationProfile app;
  LaunchProfile l1;
  l1.kernel_name = "kernel_a";
  l1.blocks = {{.thread_insts = 320, .warp_insts = 10, .mem_requests = 4},
               {.thread_insts = 640, .warp_insts = 20, .mem_requests = 8}};
  l1.bbv = {5, 0, 3, 22};
  LaunchProfile l2;
  l2.kernel_name = "kernel_b";
  l2.blocks = {{.thread_insts = 96, .warp_insts = 3, .mem_requests = 0}};
  l2.bbv = {1, 2};
  app.launches = {std::move(l1), std::move(l2)};
  return app;
}

TEST(ProfileIoTest, RoundTripPreservesEverything) {
  const ApplicationProfile original = sample_profile();
  std::stringstream stream;
  save_profile(original, stream);
  const auto loaded = load_profile(stream);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->launches.size(), original.launches.size());
  for (std::size_t l = 0; l < original.launches.size(); ++l) {
    const LaunchProfile& a = original.launches[l];
    const LaunchProfile& b = loaded->launches[l];
    EXPECT_EQ(a.kernel_name, b.kernel_name);
    EXPECT_EQ(a.bbv, b.bbv);
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    for (std::size_t i = 0; i < a.blocks.size(); ++i) {
      EXPECT_EQ(a.blocks[i].thread_insts, b.blocks[i].thread_insts);
      EXPECT_EQ(a.blocks[i].warp_insts, b.blocks[i].warp_insts);
      EXPECT_EQ(a.blocks[i].mem_requests, b.blocks[i].mem_requests);
    }
  }
}

TEST(ProfileIoTest, EmptyProfileRoundTrips) {
  std::stringstream stream;
  save_profile(ApplicationProfile{}, stream);
  const auto loaded = load_profile(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->launches.empty());
}

TEST(ProfileIoTest, RejectsWrongMagic) {
  std::stringstream stream("not-a-profile\n0\n");
  const auto loaded = load_profile(stream);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorrupt);
}

TEST(ProfileIoTest, UnknownVersionIsVersionMismatch) {
  std::stringstream stream("tbpoint-profile-v9\n0\n");
  const auto loaded = load_profile(stream);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kVersionMismatch);
}

TEST(ProfileIoTest, LegacyV1WithoutChecksumStillLoads) {
  std::stringstream stream(
      "tbpoint-profile-v1\n1\nlaunch kernel_a 1 2\nbbv 5 7\n96 3 0\n");
  const auto loaded = load_profile(stream);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->launches.size(), 1u);
  EXPECT_EQ(loaded->launches[0].kernel_name, "kernel_a");
  EXPECT_EQ(loaded->launches[0].bbv, (std::vector<std::uint64_t>{5, 7}));
}

TEST(ProfileIoTest, HugeLaunchCountRejectedBeforeAllocation) {
  // A lying size field must be rejected as too-large up front, not fed to
  // resize/reserve.  Legacy v1 framing so no checksum has to match.
  std::stringstream stream("tbpoint-profile-v1\n999999999999\n");
  const auto loaded = load_profile(stream);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kTooLarge);
}

TEST(ProfileIoTest, HugeBlockCountRejectedBeforeAllocation) {
  std::stringstream stream(
      "tbpoint-profile-v1\n1\nlaunch k 888888888888 1\nbbv 5\n");
  const auto loaded = load_profile(stream);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kTooLarge);
}

TEST(ProfileIoTest, RejectsTrailingGarbage) {
  // Records after the declared launch count must not be silently ignored
  // (that is how a spliced or magic-flipped file would slip through).
  std::stringstream doubled("tbpoint-profile-v1\n0\n1 2 3\n");
  const auto loaded = load_profile(doubled);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorrupt);
}

TEST(ProfileIoTest, RejectsTruncatedInput) {
  const ApplicationProfile original = sample_profile();
  std::stringstream stream;
  save_profile(original, stream);
  std::string text = stream.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_FALSE(load_profile(truncated).has_value());
}

TEST(ProfileIoTest, RejectsGarbageNumbers) {
  std::stringstream stream(
      "tbpoint-profile-v1\n1\nlaunch k 1 1\nbbv 5\nxx yy zz\n");
  EXPECT_FALSE(load_profile(stream).has_value());
}

TEST(ProfileIoTest, FileRoundTrip) {
  const ApplicationProfile original = sample_profile();
  const std::string path = ::testing::TempDir() + "/tbp_profile_io_test.txt";
  ASSERT_TRUE(save_profile_file(original, path).ok());
  const auto loaded = load_profile_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->launches.size(), 2u);
  EXPECT_EQ(loaded->launches[0].kernel_name, "kernel_a");
}

TEST(ProfileIoTest, MissingFileIsNotFound) {
  const auto loaded = load_profile_file("/nonexistent/path/profile.txt");
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(ProfileIoTest, UnwritablePathIsIoError) {
  EXPECT_FALSE(
      save_profile_file(sample_profile(), "/proc/tbp/cannot/write.txt").ok());
}

}  // namespace
}  // namespace tbp::profile
