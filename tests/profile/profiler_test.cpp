#include "profile/profiler.hpp"

#include <gtest/gtest.h>

#include "trace/generator.hpp"

namespace tbp::profile {
namespace {

trace::BlockBehavior behavior(std::uint32_t iterations, std::uint32_t mem,
                              std::uint8_t lines) {
  trace::BlockBehavior b;
  b.loop_iterations = iterations;
  b.alu_per_iteration = 4;
  b.mem_per_iteration = mem;
  b.stores_per_iteration = 0;
  b.branch_divergence = 0.0;
  b.lines_per_access = lines;
  b.pattern = trace::AddressPattern::kStreaming;
  return b;
}

TEST(ProfilerTest, CountsMatchTraceArithmetic) {
  const trace::SyntheticLaunch launch(
      trace::make_synthetic_kernel_info("p"), 3, 1,
      [](std::uint32_t) { return behavior(4, 2, 4); });
  const LaunchProfile profile = profile_launch(launch);
  ASSERT_EQ(profile.blocks.size(), 3u);

  // Per warp: 2 + 4*(4+2) + 2 = 28 insts; 8 warps.
  const std::uint64_t per_block_warp_insts = 28 * 8;
  for (const BlockStats& b : profile.blocks) {
    EXPECT_EQ(b.warp_insts, per_block_warp_insts);
    EXPECT_EQ(b.thread_insts, per_block_warp_insts * 32);
    EXPECT_EQ(b.mem_requests, 4u * 2u * 4u * 8u);
  }
  EXPECT_EQ(profile.total_warp_insts(), per_block_warp_insts * 3);
}

TEST(ProfilerTest, StallProbabilityIsRequestsOverInsts) {
  BlockStats stats;
  stats.warp_insts = 200;
  stats.mem_requests = 50;
  EXPECT_DOUBLE_EQ(stats.stall_probability(), 0.25);
}

TEST(ProfilerTest, StallProbabilityOfEmptyBlockIsZero) {
  EXPECT_DOUBLE_EQ(BlockStats{}.stall_probability(), 0.0);
}

TEST(ProfilerTest, UniformBlocksHaveZeroCov) {
  const trace::SyntheticLaunch launch(
      trace::make_synthetic_kernel_info("p"), 5, 1,
      [](std::uint32_t) { return behavior(4, 1, 1); });
  EXPECT_DOUBLE_EQ(profile_launch(launch).block_size_cov(), 0.0);
}

TEST(ProfilerTest, VariedBlocksHavePositiveCov) {
  const trace::SyntheticLaunch launch(
      trace::make_synthetic_kernel_info("p"), 4, 1, [](std::uint32_t b) {
        return behavior(b % 2 == 0 ? 2 : 20, 1, 1);
      });
  EXPECT_GT(profile_launch(launch).block_size_cov(), 0.3);
}

TEST(ProfilerTest, BbvSumsToWarpInsts) {
  const trace::SyntheticLaunch launch(
      trace::make_synthetic_kernel_info("p"), 2, 7,
      [](std::uint32_t) { return behavior(6, 2, 2); });
  const LaunchProfile profile = profile_launch(launch);
  std::uint64_t bbv_total = 0;
  for (std::uint64_t v : profile.bbv) bbv_total += v;
  EXPECT_EQ(bbv_total, profile.total_warp_insts());
}

TEST(ProfilerTest, ApplicationAggregation) {
  const trace::SyntheticLaunch small(
      trace::make_synthetic_kernel_info("a"), 2, 1,
      [](std::uint32_t) { return behavior(2, 1, 1); });
  const trace::SyntheticLaunch large(
      trace::make_synthetic_kernel_info("b"), 3, 2,
      [](std::uint32_t) { return behavior(8, 1, 1); });
  ApplicationProfile app;
  app.launches.push_back(profile_launch(small));
  app.launches.push_back(profile_launch(large));
  EXPECT_EQ(app.total_blocks(), 5u);
  EXPECT_EQ(app.total_warp_insts(), app.launches[0].total_warp_insts() +
                                        app.launches[1].total_warp_insts());
}

TEST(ProfilerTest, ProfileIsIndependentOfHardwareKnobs) {
  // The profiler consumes only the trace; nothing here references GpuConfig
  // at the type level, which is the hardware-independence requirement.  The
  // test pins the invariant that two profiling passes agree exactly.
  const trace::SyntheticLaunch launch(
      trace::make_synthetic_kernel_info("p"), 6, 9, [](std::uint32_t b) {
        return behavior(3 + b, 1 + b % 3, static_cast<std::uint8_t>(1 + b % 4));
      });
  const LaunchProfile a = profile_launch(launch);
  const LaunchProfile b = profile_launch(launch);
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    EXPECT_EQ(a.blocks[i].warp_insts, b.blocks[i].warp_insts);
    EXPECT_EQ(a.blocks[i].thread_insts, b.blocks[i].thread_insts);
    EXPECT_EQ(a.blocks[i].mem_requests, b.blocks[i].mem_requests);
  }
}

}  // namespace
}  // namespace tbp::profile
