#include "cluster/feature.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tbp::cluster {
namespace {

TEST(FeatureTest, EuclideanDistance) {
  const FeatureVector a = {0.0, 0.0};
  const FeatureVector b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(distance(a, b, Metric::kEuclidean), 5.0);
}

TEST(FeatureTest, ManhattanDistance) {
  const FeatureVector a = {1.0, -1.0};
  const FeatureVector b = {4.0, 1.0};
  EXPECT_DOUBLE_EQ(distance(a, b, Metric::kManhattan), 5.0);
}

TEST(FeatureTest, DistanceToSelfIsZero) {
  const FeatureVector a = {1.5, 2.5, -3.0};
  EXPECT_DOUBLE_EQ(distance(a, a, Metric::kEuclidean), 0.0);
  EXPECT_DOUBLE_EQ(distance(a, a, Metric::kManhattan), 0.0);
}

TEST(FeatureTest, CentroidOfSubset) {
  const std::vector<FeatureVector> points = {{0.0, 0.0}, {2.0, 4.0}, {100.0, 100.0}};
  const std::vector<std::size_t> members = {0, 1};
  const FeatureVector c = centroid(points, members);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 2.0);
}

TEST(FeatureTest, NearestToCentroid) {
  const std::vector<FeatureVector> points = {{0.0}, {1.0}, {10.0}};
  const std::vector<std::size_t> members = {0, 1, 2};
  // Centroid ~ 3.67; closest member is {1.0} (index 1 within members).
  EXPECT_EQ(nearest_to_centroid(points, members, Metric::kEuclidean), 1u);
}

TEST(FeatureTest, NearestToCentroidTieBreaksLow) {
  const std::vector<FeatureVector> points = {{0.0}, {2.0}};
  const std::vector<std::size_t> members = {0, 1};
  EXPECT_EQ(nearest_to_centroid(points, members, Metric::kEuclidean), 0u);
}

TEST(FeatureTest, MembersByCluster) {
  const std::vector<int> labels = {0, 1, 0, 2, 1};
  const auto members = members_by_cluster(labels);
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(members[1], (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(members[2], (std::vector<std::size_t>{3}));
}

TEST(FeatureTest, NormalizeDimensionsByMean) {
  const std::vector<FeatureVector> points = {{2.0, 0.0}, {4.0, 0.0}};
  const auto out = normalize_dimensions_by_mean(points);
  EXPECT_DOUBLE_EQ(out[0][0], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(out[1][0], 4.0 / 3.0);
  // Zero-mean dimension becomes all-zero, not NaN.
  EXPECT_DOUBLE_EQ(out[0][1], 0.0);
  EXPECT_DOUBLE_EQ(out[1][1], 0.0);
}

}  // namespace
}  // namespace tbp::cluster
