#include "cluster/kmeans.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "stats/rng.hpp"

namespace tbp::cluster {
namespace {

/// `n_clusters` tight blobs far apart.
std::vector<FeatureVector> make_blobs(std::uint64_t seed, std::size_t n_clusters,
                                      std::size_t per_cluster, std::size_t dims) {
  stats::Rng rng(seed);
  std::vector<FeatureVector> points;
  for (std::size_t c = 0; c < n_clusters; ++c) {
    FeatureVector center(dims);
    for (double& x : center) x = static_cast<double>(c) * 100.0 + rng.uniform();
    for (std::size_t i = 0; i < per_cluster; ++i) {
      FeatureVector p = center;
      for (double& x : p) x += rng.gaussian(0.0, 0.5);
      points.push_back(std::move(p));
    }
  }
  return points;
}

TEST(KMeansTest, SingleClusterCentroidIsMean) {
  const std::vector<FeatureVector> points = {{0.0}, {2.0}, {4.0}};
  stats::Rng rng(1);
  const KMeansResult result = kmeans(points, 1, rng);
  ASSERT_EQ(result.k, 1u);
  EXPECT_DOUBLE_EQ(result.centroids[0][0], 2.0);
  EXPECT_DOUBLE_EQ(result.inertia, 8.0);
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  const std::vector<FeatureVector> points = make_blobs(7, 3, 20, 2);
  stats::Rng rng(2);
  const KMeansResult result = kmeans(points, 3, rng);
  ASSERT_EQ(result.k, 3u);
  // All points of a blob share a label; blobs get distinct labels.
  for (std::size_t c = 0; c < 3; ++c) {
    const int label = result.labels[c * 20];
    for (std::size_t i = 0; i < 20; ++i) {
      EXPECT_EQ(result.labels[c * 20 + i], label);
    }
  }
  const std::set<int> distinct(result.labels.begin(), result.labels.end());
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(KMeansTest, KClampedToPointCount) {
  const std::vector<FeatureVector> points = {{0.0}, {1.0}};
  stats::Rng rng(3);
  const KMeansResult result = kmeans(points, 10, rng);
  EXPECT_LE(result.k, 2u);
}

TEST(KMeansTest, LabelsAreDense) {
  const std::vector<FeatureVector> points = make_blobs(11, 4, 10, 3);
  stats::Rng rng(4);
  const KMeansResult result = kmeans(points, 4, rng);
  int max_label = -1;
  for (int l : result.labels) {
    EXPECT_GE(l, 0);
    max_label = std::max(max_label, l);
  }
  EXPECT_EQ(static_cast<std::size_t>(max_label) + 1, result.k);
  EXPECT_EQ(result.centroids.size(), result.k);
}

TEST(KMeansTest, DeterministicForSameRngSeed) {
  const std::vector<FeatureVector> points = make_blobs(5, 3, 15, 2);
  stats::Rng rng_a(42);
  stats::Rng rng_b(42);
  const KMeansResult a = kmeans(points, 3, rng_a);
  const KMeansResult b = kmeans(points, 3, rng_b);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeansTest, MoreClustersNeverIncreaseInertia) {
  const std::vector<FeatureVector> points = make_blobs(13, 4, 12, 2);
  stats::Rng rng(6);
  double prev = -1.0;
  for (std::size_t k = 1; k <= 6; ++k) {
    stats::Rng krng = rng.substream(k);
    const KMeansResult result = kmeans(points, k, krng, {.restarts = 8});
    if (prev >= 0.0) {
      EXPECT_LE(result.inertia, prev * 1.0001);
    }
    prev = result.inertia;
  }
}

class BicSelectsTrueK : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BicSelectsTrueK, OnWellSeparatedBlobs) {
  const std::size_t true_k = GetParam();
  const std::vector<FeatureVector> points = make_blobs(true_k * 31, true_k, 25, 2);
  stats::Rng rng(7);
  const BicSelection selection = kmeans_bic(points, 10, rng);
  EXPECT_EQ(selection.selected_k, true_k);
}

INSTANTIATE_TEST_SUITE_P(TrueK, BicSelectsTrueK, ::testing::Values(2, 3, 4, 5));

TEST(KMeansTest, BicOnIdenticalPointsPicksOneCluster) {
  const std::vector<FeatureVector> points(20, FeatureVector{1.0, 1.0});
  stats::Rng rng(8);
  const BicSelection selection = kmeans_bic(points, 5, rng);
  EXPECT_EQ(selection.selected_k, 1u);
}

}  // namespace
}  // namespace tbp::cluster
