#include "cluster/hierarchical.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "stats/rng.hpp"

namespace tbp::cluster {
namespace {

/// Relabels a clustering canonically (by first appearance) so that label
/// permutations compare equal.
std::vector<int> canonical(const std::vector<int>& labels) {
  std::map<int, int> remap;
  std::vector<int> out;
  out.reserve(labels.size());
  for (int l : labels) {
    auto [it, inserted] = remap.emplace(l, static_cast<int>(remap.size()));
    out.push_back(it->second);
  }
  return out;
}

std::vector<FeatureVector> random_points(std::uint64_t seed, std::size_t n,
                                         std::size_t dims) {
  stats::Rng rng(seed);
  std::vector<FeatureVector> points(n, FeatureVector(dims));
  for (auto& p : points) {
    for (double& x : p) x = rng.uniform(0.0, 10.0);
  }
  return points;
}

TEST(HierarchicalTest, EmptyAndSingleton) {
  const std::vector<FeatureVector> none;
  EXPECT_TRUE(cluster_by_threshold(none, 1.0).empty());

  const std::vector<FeatureVector> one = {{1.0, 2.0}};
  const std::vector<int> labels = cluster_by_threshold(one, 1.0);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0], 0);
}

TEST(HierarchicalTest, TwoFarPointsStaySeparate) {
  const std::vector<FeatureVector> points = {{0.0}, {10.0}};
  const std::vector<int> labels = cluster_by_threshold(points, 1.0);
  EXPECT_NE(labels[0], labels[1]);
}

TEST(HierarchicalTest, TwoClosePointsMerge) {
  const std::vector<FeatureVector> points = {{0.0}, {0.5}};
  const std::vector<int> labels = cluster_by_threshold(points, 1.0);
  EXPECT_EQ(labels[0], labels[1]);
}

TEST(HierarchicalTest, ObviousTwoClusterStructure) {
  const std::vector<FeatureVector> points = {
      {0.0, 0.0}, {0.1, 0.0}, {0.0, 0.1}, {5.0, 5.0}, {5.1, 5.0}, {5.0, 5.1}};
  const std::vector<int> labels = cluster_by_threshold(points, 1.0);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_EQ(labels[4], labels[5]);
  EXPECT_NE(labels[0], labels[3]);
}

TEST(HierarchicalTest, IdenticalPointsFormOneCluster) {
  const std::vector<FeatureVector> points(7, FeatureVector{3.0, 3.0});
  const std::vector<int> labels = cluster_by_threshold(points, 0.0);
  for (int l : labels) EXPECT_EQ(l, 0);
}

TEST(HierarchicalTest, ZeroThresholdSeparatesDistinctPoints) {
  const std::vector<FeatureVector> points = {{0.0}, {0.001}, {0.002}};
  const std::vector<int> labels = cluster_by_threshold(points, 0.0);
  std::set<int> distinct(labels.begin(), labels.end());
  EXPECT_EQ(distinct.size(), 3u);
}

/// The paper defines the threshold as the maximum distance between any two
/// points in a cluster; with complete linkage every cut cluster must honor
/// that diameter bound.
TEST(HierarchicalTest, CompleteLinkageRespectsDiameterBound) {
  const std::vector<FeatureVector> points = random_points(17, 60, 3);
  const double threshold = 4.0;
  const std::vector<int> labels =
      cluster_by_threshold(points, threshold, Linkage::kComplete);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      if (labels[i] == labels[j]) {
        EXPECT_LE(distance(points[i], points[j], Metric::kEuclidean), threshold)
            << "cluster diameter exceeds the threshold";
      }
    }
  }
}

TEST(HierarchicalTest, CutKProducesExactlyKClusters) {
  const std::vector<FeatureVector> points = random_points(23, 30, 2);
  const Dendrogram tree = agglomerate(points, Linkage::kAverage, Metric::kEuclidean);
  for (std::size_t k = 1; k <= points.size(); ++k) {
    const std::vector<int> labels = tree.cut_k(k);
    std::set<int> distinct(labels.begin(), labels.end());
    EXPECT_EQ(distinct.size(), k);
  }
}

TEST(HierarchicalDeathTest, CutKZeroAbortsInAllBuilds) {
  // cut_k(0) is a caller bug; without the release-build check it would
  // silently keep every merge (one giant cluster) under NDEBUG.
  const std::vector<FeatureVector> points = random_points(5, 8, 2);
  const Dendrogram tree = agglomerate(points, Linkage::kAverage, Metric::kEuclidean);
  EXPECT_DEATH((void)tree.cut_k(0), "k must be >= 1");
}

TEST(HierarchicalTest, MergeHeightsAreMonotoneAlongPaths) {
  // Single/complete/average linkage cannot produce inversions: every
  // merge's height must be >= the heights of the merges it joins.
  const std::vector<FeatureVector> points = random_points(31, 40, 2);
  for (const Linkage linkage :
       {Linkage::kSingle, Linkage::kComplete, Linkage::kAverage}) {
    const Dendrogram tree = agglomerate(points, linkage, Metric::kEuclidean);
    const auto merges = tree.merges();
    const std::size_t n = tree.n_leaves();
    for (std::size_t i = 0; i < merges.size(); ++i) {
      for (const std::size_t child : {merges[i].left, merges[i].right}) {
        if (child >= n) {
          EXPECT_LE(merges[child - n].height, merges[i].height + 1e-12);
        }
      }
    }
  }
}

struct NnChainParam {
  std::uint64_t seed;
  std::size_t n;
  std::size_t dims;
  Linkage linkage;
  Metric metric;
};

class NnChainEquivalence : public ::testing::TestWithParam<NnChainParam> {};

/// The production NN-chain algorithm and the naive O(n^3) reference must
/// produce identical flat clusterings at every cut level.
TEST_P(NnChainEquivalence, MatchesNaiveReference) {
  const NnChainParam p = GetParam();
  const std::vector<FeatureVector> points = random_points(p.seed, p.n, p.dims);
  const Dendrogram fast = agglomerate(points, p.linkage, p.metric);
  const Dendrogram naive = agglomerate_naive(points, p.linkage, p.metric);

  // Same multiset of merge heights.
  std::vector<double> fast_heights;
  std::vector<double> naive_heights;
  for (const Merge& m : fast.merges()) fast_heights.push_back(m.height);
  for (const Merge& m : naive.merges()) naive_heights.push_back(m.height);
  std::sort(fast_heights.begin(), fast_heights.end());
  std::sort(naive_heights.begin(), naive_heights.end());
  ASSERT_EQ(fast_heights.size(), naive_heights.size());
  for (std::size_t i = 0; i < fast_heights.size(); ++i) {
    EXPECT_NEAR(fast_heights[i], naive_heights[i], 1e-9);
  }

  // Same flat clustering at several thresholds.
  for (const double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double threshold =
        fast_heights.empty() ? 0.0 : frac * fast_heights.back() * 0.999;
    EXPECT_EQ(canonical(fast.cut(threshold)), canonical(naive.cut(threshold)))
        << "cut mismatch at threshold " << threshold;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, NnChainEquivalence,
    ::testing::Values(
        NnChainParam{1, 12, 1, Linkage::kComplete, Metric::kEuclidean},
        NnChainParam{2, 20, 2, Linkage::kComplete, Metric::kEuclidean},
        NnChainParam{3, 35, 3, Linkage::kComplete, Metric::kManhattan},
        NnChainParam{4, 12, 1, Linkage::kSingle, Metric::kEuclidean},
        NnChainParam{5, 25, 2, Linkage::kSingle, Metric::kManhattan},
        NnChainParam{6, 18, 4, Linkage::kAverage, Metric::kEuclidean},
        NnChainParam{7, 40, 2, Linkage::kAverage, Metric::kEuclidean},
        NnChainParam{8, 50, 1, Linkage::kComplete, Metric::kEuclidean},
        NnChainParam{9, 9, 5, Linkage::kComplete, Metric::kEuclidean},
        NnChainParam{10, 30, 2, Linkage::kSingle, Metric::kEuclidean}));

TEST(HierarchicalTest, DeterministicAcrossCalls) {
  const std::vector<FeatureVector> points = random_points(99, 50, 3);
  const std::vector<int> a = cluster_by_threshold(points, 2.0);
  const std::vector<int> b = cluster_by_threshold(points, 2.0);
  EXPECT_EQ(a, b);
}

TEST(HierarchicalTest, HigherThresholdNeverIncreasesClusterCount) {
  const std::vector<FeatureVector> points = random_points(7, 40, 2);
  const Dendrogram tree = agglomerate(points, Linkage::kComplete, Metric::kEuclidean);
  std::size_t prev = points.size() + 1;
  for (double t = 0.0; t < 15.0; t += 0.5) {
    const std::vector<int> labels = tree.cut(t);
    const std::set<int> distinct(labels.begin(), labels.end());
    EXPECT_LE(distinct.size(), prev);
    prev = distinct.size();
  }
  EXPECT_EQ(prev, 1u);  // everything merged at a huge threshold
}

}  // namespace
}  // namespace tbp::cluster
